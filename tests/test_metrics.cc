// Tests for the aets::obs observability layer: concurrent counter/gauge
// updates, registry snapshot consistency, span timing, and the JSON export
// round-trip (parsed with a minimal JSON reader defined here).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "aets/common/clock.h"
#include "aets/obs/export.h"
#include "aets/obs/metrics.h"
#include "aets/obs/trace.h"

namespace aets {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader (objects, arrays, strings, numbers) sufficient to
// round-trip the exporter's output. Parse failures -> ADD_FAILURE + empty.

struct JsonValue {
  enum Kind { kNull, kNumber, kString, kObject, kArray } kind = kNull;
  double number = 0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue kEmpty;
    auto it = object.find(key);
    return it == object.end() ? kEmpty : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON garbage";
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return '\0';
    }
    return text_[pos_];
  }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }

  void Fail(const std::string& why) {
    if (!failed_) ADD_FAILURE() << "JSON parse error at " << pos_ << ": " << why;
    failed_ = true;
  }

  JsonValue ParseValue() {
    if (failed_) return {};
    char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    Consume('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValue key = ParseString();
      Consume(':');
      v.object[key.str] = ParseValue();
      if (failed_) return v;
      char c = Peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') {
        Fail("expected ',' or '}'");
        return v;
      }
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    Consume('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      if (failed_) return v;
      char c = Peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') {
        Fail("expected ',' or ']'");
        return v;
      }
    }
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::kString;
    if (!Consume('"')) return v;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            v.str += '\n';
            break;
          case 'r':
            v.str += '\r';
            break;
          case 't':
            v.str += '\t';
            break;
          case 'u':
            // The exporter only emits \u00XX for control bytes.
            if (pos_ + 4 <= text_.size()) {
              v.str += static_cast<char>(
                  std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16));
              pos_ += 4;
            }
            break;
          default:
            v.str += esc;  // \" and \\ and /
        }
      } else {
        v.str += c;
      }
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return v;
    }
    ++pos_;  // closing quote
    return v;
  }

  JsonValue ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::kNumber;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a number");
      return v;
    }
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------------------

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter* counter = GetCounter("test.concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, ConcurrentAddSubNetsToZero) {
  Gauge* gauge = GetGauge("test.concurrent_gauge");
  gauge->Reset();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        gauge->Add(3);
        gauge->Add(-3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(gauge->value(), 0);
}

TEST(RegistryTest, SameNameSameInstrument) {
  Counter* a = GetCounter("test.same_name");
  Counter* b = GetCounter("test.same_name");
  EXPECT_EQ(a, b);
  // Identical names of different kinds are distinct instruments.
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(GetGauge("test.same_name")));
}

TEST(RegistryTest, SnapshotSeesRegisteredValues) {
  GetCounter("test.snap_counter")->Reset();
  GetCounter("test.snap_counter")->Add(41);
  GetGauge("test.snap_gauge")->Set(-7);
  Histogram* h = GetHistogram("test.snap_hist");
  h->Reset();
  h->Record(10);
  h->Record(30);

  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap.counters.at("test.snap_counter"), 41u);
  EXPECT_EQ(snap.gauges.at("test.snap_gauge"), -7);
  EXPECT_EQ(snap.histograms.at("test.snap_hist").count, 2);
  EXPECT_EQ(snap.histograms.at("test.snap_hist").sum, 40);
}

TEST(RegistryTest, SnapshotIsConsistentUnderConcurrentUpdates) {
  // The writer bumps b then a, so b >= a at every instant. Snapshot reads
  // counters in name order (a first), so every snapshot must observe
  // sb >= sa, and each counter must be monotone across snapshots.
  Counter* a = GetCounter("test.consistency_a");
  Counter* b = GetCounter("test.consistency_b");
  a->Reset();
  b->Reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      b->Add(1);
      a->Add(1);
    }
  });
  uint64_t last_a = 0;
  for (int i = 0; i < 200; ++i) {
    MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
    uint64_t sa = snap.counters.at("test.consistency_a");
    uint64_t sb = snap.counters.at("test.consistency_b");
    EXPECT_GE(sb, sa);      // b is always incremented first
    EXPECT_GE(sa, last_a);  // monotone across snapshots
    last_a = sa;
  }
  stop.store(true);
  writer.join();
}

TEST(TraceTest, SpanDurationsAreMonotonicAndNonNegative) {
  Tracer::Instance().Clear();
  int64_t before_ns = MonotonicNanos();
  for (int i = 0; i < 5; ++i) {
    AETS_TRACE_SPAN("test.span_timing");
    // A little real work so durations are observable.
    volatile int sink = 0;
    for (int k = 0; k < 1000; ++k) sink = sink + k;
  }
  Tracer::Instance().FlushThisThread();
  int64_t after_ns = MonotonicNanos();

  std::vector<SpanEvent> spans;
  for (const SpanEvent& ev : Tracer::Instance().RecentSpans()) {
    if (std::string_view(ev.name) == "test.span_timing") spans.push_back(ev);
  }
  ASSERT_EQ(spans.size(), 5u);
  int64_t prev_start = before_ns;
  for (const SpanEvent& ev : spans) {
    EXPECT_GE(ev.duration_ns, 0);
    EXPECT_GE(ev.start_ns, prev_start);  // same thread: starts are ordered
    EXPECT_LE(ev.start_ns + ev.duration_ns, after_ns);
    prev_start = ev.start_ns;
  }
  // The span histogram recorded every instance.
  EXPECT_GE(GetHistogram("span.test.span_timing")->count(), 5);
}

TEST(TraceTest, RingKeepsMostRecentWhenOverCapacity) {
  Tracer::Instance().Clear();
  constexpr size_t kOverfill = Tracer::kRingCapacity + 500;
  for (size_t i = 0; i < kOverfill; ++i) {
    AETS_TRACE_SPAN("test.ring_overflow");
  }
  Tracer::Instance().FlushThisThread();
  std::vector<SpanEvent> spans = Tracer::Instance().RecentSpans();
  EXPECT_EQ(spans.size(), Tracer::kRingCapacity);
  // Arrival order: starts never decrease (single writer thread).
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST(TraceTest, ConcurrentSpansAllArrive) {
  Tracer::Instance().Clear();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 300;  // fits in the ring with room to spare
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        AETS_TRACE_SPAN("test.concurrent_span");
      }
      Tracer::Instance().FlushThisThread();
    });
  }
  for (auto& th : threads) th.join();
  size_t seen = 0;
  for (const SpanEvent& ev : Tracer::Instance().RecentSpans()) {
    if (std::string_view(ev.name) == "test.concurrent_span") ++seen;
  }
  EXPECT_EQ(seen, static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST(JsonExportTest, EscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonExportTest, SnapshotRoundTripsThroughJson) {
  GetCounter("test.json_counter")->Reset();
  GetCounter("test.json_counter")->Add(123456789);
  GetGauge("test.json_gauge")->Set(-42);
  Histogram* h = GetHistogram("test.json_hist");
  h->Reset();
  for (int i = 1; i <= 100; ++i) h->Record(i);

  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  std::string json = SnapshotToJson(snap);  // keep alive: parser holds a view
  JsonParser parser(json);
  JsonValue root = parser.Parse();
  ASSERT_FALSE(parser.failed());

  EXPECT_EQ(root.at("counters").at("test.json_counter").number, 123456789.0);
  EXPECT_EQ(root.at("gauges").at("test.json_gauge").number, -42.0);
  const JsonValue& hist = root.at("histograms").at("test.json_hist");
  ASSERT_EQ(hist.kind, JsonValue::kObject);
  EXPECT_EQ(hist.at("count").number, 100.0);
  EXPECT_EQ(hist.at("sum").number, 5050.0);
  EXPECT_EQ(hist.at("min").number, 1.0);
  EXPECT_EQ(hist.at("max").number, 100.0);
  EXPECT_NEAR(hist.at("mean").number, 50.5, 0.01);
  EXPECT_GT(hist.at("p99").number, hist.at("p50").number);

  // Every registered instrument must appear.
  for (const auto& [name, value] : snap.counters) {
    EXPECT_TRUE(root.at("counters").has(name)) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_TRUE(root.at("gauges").has(name)) << name;
  }
  for (const auto& [name, value] : snap.histograms) {
    EXPECT_TRUE(root.at("histograms").has(name)) << name;
  }
}

TEST(JsonExportTest, FullDumpIncludesSpans) {
  Tracer::Instance().Clear();
  {
    AETS_TRACE_SPAN("test.json_span");
  }
  std::string json = MetricsToJson();  // flushes the calling thread's spans
  JsonParser parser(json);
  JsonValue root = parser.Parse();
  ASSERT_FALSE(parser.failed());
  ASSERT_EQ(root.at("spans").kind, JsonValue::kArray);
  bool found = false;
  for (const JsonValue& span : root.at("spans").array) {
    if (span.at("name").str == "test.json_span") {
      found = true;
      EXPECT_GE(span.at("duration_ns").number, 0.0);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_EQ(root.at("metrics").kind, JsonValue::kObject);
  EXPECT_TRUE(root.at("metrics").has("counters"));
}

TEST(JsonExportTest, WriteFileRoundTrip) {
  GetCounter("test.file_counter")->Add(7);
  std::string path = ::testing::TempDir() + "/aets_metrics_test.json";
  ASSERT_TRUE(WriteMetricsJsonFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  JsonParser parser(content);
  JsonValue root = parser.Parse();
  ASSERT_FALSE(parser.failed());
  EXPECT_TRUE(root.at("metrics").at("counters").has("test.file_counter"));
}

TEST(RegistryTest, ResetAllZeroesEverything) {
  GetCounter("test.reset_counter")->Add(5);
  GetGauge("test.reset_gauge")->Set(9);
  GetHistogram("test.reset_hist")->Record(11);
  MetricsRegistry::Instance().ResetAll();
  EXPECT_EQ(GetCounter("test.reset_counter")->value(), 0u);
  EXPECT_EQ(GetGauge("test.reset_gauge")->value(), 0);
  EXPECT_EQ(GetHistogram("test.reset_hist")->count(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace aets
