// Shared seed plumbing for every randomized suite: one base seed, resolved
// from `--seed=N` (highest precedence) or the AETS_TEST_SEED environment
// variable, with a fixed default so plain CI runs are reproducible. Suites
// derive per-test streams with DeriveSeed; a failure prints the base seed so
// the exact run can be replayed with `--seed=<printed>`.
#ifndef AETS_TESTS_TEST_SEED_H_
#define AETS_TESTS_TEST_SEED_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aets {
namespace test {

inline uint64_t& MutableBaseSeed() {
  static uint64_t seed = 0xAE75C0DEull;
  return seed;
}

inline uint64_t BaseSeed() { return MutableBaseSeed(); }

/// splitmix64 over (base seed, salt): fans the base seed into independent
/// per-test / per-iteration streams that stay stable across suites.
inline uint64_t DeriveSeed(uint64_t salt) {
  uint64_t z = MutableBaseSeed() + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Resolves the base seed and strips `--seed=N` from argv. Call from main
/// after InitGoogleTest (which removes gtest's own flags).
inline void InitSeedFromArgs(int* argc, char** argv) {
  if (const char* env = std::getenv("AETS_TEST_SEED")) {
    MutableBaseSeed() = std::strtoull(env, nullptr, 0);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      MutableBaseSeed() = std::strtoull(argv[i] + 7, nullptr, 0);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Prints the reproduction seed next to every test failure.
class SeedBanner : public ::testing::EmptyTestEventListener {
 public:
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (result.failed()) {
      std::fprintf(
          stderr,
          "[seed] reproduce with --seed=%llu (or AETS_TEST_SEED=%llu)\n",
          static_cast<unsigned long long>(BaseSeed()),
          static_cast<unsigned long long>(BaseSeed()));
    }
  }
};

inline void InstallSeedBanner() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedBanner);
}

}  // namespace test
}  // namespace aets

#endif  // AETS_TESTS_TEST_SEED_H_
