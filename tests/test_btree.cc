// B+Tree tests: structure (splits, height, invariants), point and range
// operations, lazy erase, concurrency, and a parameterized random-operation
// oracle comparison against std::map.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "aets/common/rng.h"
#include "aets/log/record.h"
#include "aets/storage/btree.h"
#include "aets/storage/memtable.h"
#include "test_seed.h"

namespace aets {
namespace {

struct Payload {
  explicit Payload(int v = 0) : value(v) {}
  int value;
};

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<Payload> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_EQ(tree.Find(42), nullptr);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<Payload> tree;
  bool created = false;
  Payload* p = tree.GetOrCreate(10, &created, 7);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(created);
  EXPECT_EQ(p->value, 7);
  EXPECT_EQ(tree.Find(10), p);
  // Second lookup does not recreate.
  Payload* again = tree.GetOrCreate(10, &created, 99);
  EXPECT_FALSE(created);
  EXPECT_EQ(again, p);
  EXPECT_EQ(again->value, 7);
}

TEST(BPlusTreeTest, PointerStabilityAcrossSplits) {
  BPlusTree<Payload> tree;
  std::vector<Payload*> ptrs;
  for (int i = 0; i < 2000; ++i) {
    bool created;
    ptrs.push_back(tree.GetOrCreate(i, &created, i));
  }
  // Splits must not move values.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(tree.Find(i), ptrs[static_cast<size_t>(i)]);
    EXPECT_EQ(ptrs[static_cast<size_t>(i)]->value, i);
  }
  EXPECT_GT(tree.Height(), 1);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, DescendingInsertOrder) {
  BPlusTree<Payload> tree;
  for (int i = 5000; i >= 0; --i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 5001u);
  for (int i = 0; i <= 5000; i += 97) {
    ASSERT_NE(tree.Find(i), nullptr);
  }
}

TEST(BPlusTreeTest, ScanRange) {
  BPlusTree<Payload> tree;
  for (int i = 0; i < 1000; i += 2) {  // even keys only
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  std::vector<int64_t> keys;
  tree.Scan(100, 200, [&](int64_t k, Payload*) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 51u);
  EXPECT_EQ(keys.front(), 100);
  EXPECT_EQ(keys.back(), 200);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_EQ(keys[i], keys[i - 1] + 2);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  BPlusTree<Payload> tree;
  for (int i = 0; i < 100; ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  int visited = 0;
  tree.Scan(0, 99, [&](int64_t, Payload*) { return ++visited < 10; });
  EXPECT_EQ(visited, 10);
}

TEST(BPlusTreeTest, ScanFullRangeWithNegativeKeys) {
  BPlusTree<Payload> tree;
  for (int64_t k : {-100, -1, 0, 1, 100}) {
    bool created;
    tree.GetOrCreate(k, &created, 0);
  }
  std::vector<int64_t> keys;
  tree.Scan(INT64_MIN, INT64_MAX, [&](int64_t k, Payload*) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{-100, -1, 0, 1, 100}));
}

TEST(BPlusTreeTest, EraseRemovesKey) {
  BPlusTree<Payload> tree;
  for (int i = 0; i < 500; ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  EXPECT_TRUE(tree.Erase(250));
  EXPECT_FALSE(tree.Erase(250));
  EXPECT_EQ(tree.Find(250), nullptr);
  EXPECT_EQ(tree.size(), 499u);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, ConcurrentGetOrCreateSameKeys) {
  BPlusTree<Payload> tree;
  constexpr int kKeys = 500;
  std::vector<std::thread> threads;
  std::atomic<int> creates{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kKeys; ++i) {
        bool created;
        Payload* p = tree.GetOrCreate(i, &created, i);
        if (created) creates.fetch_add(1);
        ASSERT_NE(p, nullptr);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Each key created exactly once despite 4 racing threads.
  EXPECT_EQ(creates.load(), kKeys);
  EXPECT_EQ(tree.size(), static_cast<size_t>(kKeys));
  tree.CheckInvariants();
}

// Property test: a random stream of insert/find/erase/scan operations
// matches a std::map oracle exactly.
class BTreeOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeOracleTest, MatchesStdMap) {
  Rng rng(GetParam());
  BPlusTree<Payload> tree;
  std::map<int64_t, int> oracle;
  for (int op = 0; op < 20000; ++op) {
    int64_t key = rng.UniformInt(-500, 500);
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert-if-absent
        bool created;
        Payload* p = tree.GetOrCreate(key, &created, static_cast<int>(op));
        bool oracle_created = oracle.emplace(key, op).second;
        EXPECT_EQ(created, oracle_created);
        EXPECT_EQ(p->value, oracle[key]);
        break;
      }
      case 4: {  // erase
        bool erased = tree.Erase(key);
        EXPECT_EQ(erased, oracle.erase(key) > 0);
        break;
      }
      case 5:
      case 6:
      case 7: {  // find
        Payload* p = tree.Find(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(p->value, it->second);
        }
        break;
      }
      default: {  // bounded scan
        int64_t lo = key, hi = key + static_cast<int64_t>(rng.UniformInt(0, 100));
        std::vector<int64_t> got;
        tree.Scan(lo, hi, [&](int64_t k, Payload*) {
          got.push_back(k);
          return true;
        });
        std::vector<int64_t> want;
        for (auto it = oracle.lower_bound(lo);
             it != oracle.end() && it->first <= hi; ++it) {
          want.push_back(it->first);
        }
        EXPECT_EQ(got, want);
        break;
      }
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeOracleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Concurrent stress tests (run under TSan in CI): racing structural inserts,
// lazy erases, point reads, and full scans on the raw tree; then the full
// Memtable path — version-chain appends, snapshot reads, and GC truncation.
// ---------------------------------------------------------------------------

TEST(BPlusTreeStressTest, ConcurrentInsertEraseFindScan) {
  // Writers own interleaved key stripes (key = i * kWriters + w) so leaf
  // splits constantly interleave across threads; each writer deterministically
  // erases every 17th key right after inserting it, before publishing, so
  // readers have an exact expectation for every published key.
  BPlusTree<Payload> tree;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::array<std::atomic<int>, kWriters> published{};
  std::atomic<bool> done{false};

  auto expected_value = [](int w, int i) { return w * 1'000'000 + i; };
  auto erased = [](int i) { return i % 17 == 3; };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        int64_t key = static_cast<int64_t>(i) * kWriters + w;
        bool created = false;
        Payload* p = tree.GetOrCreate(key, &created, expected_value(w, i));
        ASSERT_TRUE(created);
        ASSERT_NE(p, nullptr);
        if (erased(i)) {
          ASSERT_TRUE(tree.Erase(key));
        }
        published[static_cast<size_t>(w)].store(i + 1,
                                                std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(test::DeriveSeed(0xB7EE0u + static_cast<uint64_t>(r)));
      while (!done.load(std::memory_order_acquire)) {
        int w = static_cast<int>(rng.UniformInt(0, kWriters - 1));
        int n = published[static_cast<size_t>(w)].load(
            std::memory_order_acquire);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        int i = static_cast<int>(rng.UniformInt(0, n - 1));
        int64_t key = static_cast<int64_t>(i) * kWriters + w;
        Payload* p = tree.Find(key);
        if (erased(i)) {
          EXPECT_EQ(p, nullptr) << "key " << key << " was erased pre-publish";
        } else {
          ASSERT_NE(p, nullptr) << "published key " << key << " missing";
          EXPECT_EQ(p->value, expected_value(w, i));
        }
      }
    });
  }
  threads.emplace_back([&] {
    // Scans under the shared latch race with structural splits: keys must
    // always come back strictly ascending.
    while (!done.load(std::memory_order_acquire)) {
      int64_t prev = INT64_MIN;
      tree.Scan(INT64_MIN, INT64_MAX, [&](int64_t k, Payload*) {
        EXPECT_GT(k, prev);
        prev = k;
        return true;
      });
      std::this_thread::yield();
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  tree.CheckInvariants();
  size_t expected_size = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      int64_t key = static_cast<int64_t>(i) * kWriters + w;
      Payload* p = tree.Find(key);
      if (erased(i)) {
        EXPECT_EQ(p, nullptr);
      } else {
        ++expected_size;
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->value, expected_value(w, i));
      }
    }
  }
  EXPECT_EQ(tree.size(), expected_size);
}

TEST(VersionChainStressTest, ConcurrentAppendsSnapshotReadsAndGc) {
  // The full Memtable path under contention: partitioned writers append
  // commit-ordered versions through the shared index, readers reconstruct
  // snapshots at the published safe timestamp (min over writer progress),
  // and a GC thread truncates version chains below a lagging watermark.
  // Checks gated on the GC watermark stay sound: GC only folds history no
  // reader at or above the watermark can distinguish.
  Memtable mt(/*table_id=*/0);
  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 48;
  constexpr int kWritesPerWriter = 3000;
  constexpr Timestamp kRetention = 64;
  std::atomic<Timestamp> clock{0};
  std::array<std::atomic<Timestamp>, kWriters> published{};
  std::atomic<Timestamp> gc_watermark{0};
  std::atomic<bool> done{false};
  // Owner-writer-only oracle of the last surviving write per key, compared
  // serially after the threads join (0 = absent/deleted).
  std::vector<std::vector<Timestamp>> last_write(
      kWriters, std::vector<Timestamp>(kKeysPerWriter, 0));

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(test::DeriveSeed(0xC4A10u ^ static_cast<uint64_t>(w)));
      std::vector<bool> exists(kKeysPerWriter, false);
      for (int i = 0; i < kWritesPerWriter; ++i) {
        Timestamp ts = clock.fetch_add(1, std::memory_order_relaxed) + 1;
        int k = static_cast<int>(rng.UniformInt(0, kKeysPerWriter - 1));
        int64_t key = static_cast<int64_t>(w) * kKeysPerWriter + k;
        LogRecord rec;
        if (!exists[static_cast<size_t>(k)]) {
          rec = LogRecord::Dml(
              LogRecordType::kInsert, ts, ts, ts, 0, key,
              {{0, Value(static_cast<int64_t>(ts))}, {1, Value(key)}});
          exists[static_cast<size_t>(k)] = true;
          last_write[static_cast<size_t>(w)][static_cast<size_t>(k)] = ts;
        } else if (rng.Bernoulli(0.15)) {
          rec = LogRecord::Dml(LogRecordType::kDelete, ts, ts, ts, 0, key, {});
          exists[static_cast<size_t>(k)] = false;
          last_write[static_cast<size_t>(w)][static_cast<size_t>(k)] = 0;
        } else {
          rec = LogRecord::Dml(LogRecordType::kUpdate, ts, ts, ts, 0, key,
                               {{0, Value(static_cast<int64_t>(ts))}});
          last_write[static_cast<size_t>(w)][static_cast<size_t>(k)] = ts;
        }
        mt.ApplyCommitted(rec, ts);
        published[static_cast<size_t>(w)].store(ts, std::memory_order_release);
      }
    });
  }
  auto safe_ts = [&] {
    Timestamp safe = UINT64_MAX;
    for (const auto& p : published) {
      safe = std::min(safe, p.load(std::memory_order_acquire));
    }
    return safe;
  };
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(test::DeriveSeed(0x5EADE4u + static_cast<uint64_t>(r)));
      while (!done.load(std::memory_order_acquire)) {
        Timestamp safe = safe_ts();
        if (safe == 0) {
          std::this_thread::yield();
          continue;
        }
        Timestamp back = static_cast<Timestamp>(rng.UniformInt(0, 32));
        Timestamp ts = safe > back ? safe - back : 1;
        int64_t key = rng.UniformInt(0, kWriters * kKeysPerWriter - 1);
        auto row = mt.ReadRow(key, ts);
        uint64_t d1 = mt.DigestAt(ts);
        uint64_t d2 = mt.DigestAt(ts);
        // Only validate if GC never started a pass above our snapshot: below
        // the watermark, folded history may legitimately differ.
        if (gc_watermark.load(std::memory_order_acquire) <= ts) {
          EXPECT_EQ(d1, d2) << "snapshot at frozen ts " << ts << " not stable";
          if (row.has_value()) {
            const Value* v = row->Find(0);
            ASSERT_NE(v, nullptr);
            EXPECT_GE(v->as_int64(), 1);
            EXPECT_LE(static_cast<Timestamp>(v->as_int64()), ts);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    // Visible scans must always yield strictly ascending keys.
    while (!done.load(std::memory_order_acquire)) {
      Timestamp safe = safe_ts();
      if (safe == 0) {
        std::this_thread::yield();
        continue;
      }
      int64_t prev = INT64_MIN;
      mt.ScanVisible(safe, [&](int64_t k, const Row&) {
        EXPECT_GT(k, prev);
        prev = k;
        return true;
      });
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      Timestamp safe = safe_ts();
      if (safe > kRetention) {
        Timestamp wm = safe - kRetention;
        // Publish before truncating so readers can tell whether their
        // snapshot might see folded history.
        gc_watermark.store(wm, std::memory_order_release);
        mt.GarbageCollect(wm);
      }
      std::this_thread::yield();
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Serial epilogue: the store at the final timestamp matches the
  // owner-writer oracles exactly.
  Timestamp final_ts = clock.load();
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      int64_t key = static_cast<int64_t>(w) * kKeysPerWriter + k;
      Timestamp want = last_write[static_cast<size_t>(w)][static_cast<size_t>(k)];
      auto row = mt.ReadRow(key, final_ts);
      if (want == 0) {
        EXPECT_FALSE(row.has_value()) << "key " << key << " should be absent";
      } else {
        ASSERT_TRUE(row.has_value()) << "key " << key << " missing";
        EXPECT_EQ(row->at(0).as_int64(), static_cast<int64_t>(want));
      }
    }
  }
}

}  // namespace
}  // namespace aets
