// B+Tree tests: structure (splits, height, invariants), point and range
// operations, lazy erase, concurrency, and a parameterized random-operation
// oracle comparison against std::map.

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "aets/common/rng.h"
#include "aets/storage/btree.h"

namespace aets {
namespace {

struct Payload {
  explicit Payload(int v = 0) : value(v) {}
  int value;
};

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<Payload> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_EQ(tree.Find(42), nullptr);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<Payload> tree;
  bool created = false;
  Payload* p = tree.GetOrCreate(10, &created, 7);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(created);
  EXPECT_EQ(p->value, 7);
  EXPECT_EQ(tree.Find(10), p);
  // Second lookup does not recreate.
  Payload* again = tree.GetOrCreate(10, &created, 99);
  EXPECT_FALSE(created);
  EXPECT_EQ(again, p);
  EXPECT_EQ(again->value, 7);
}

TEST(BPlusTreeTest, PointerStabilityAcrossSplits) {
  BPlusTree<Payload> tree;
  std::vector<Payload*> ptrs;
  for (int i = 0; i < 2000; ++i) {
    bool created;
    ptrs.push_back(tree.GetOrCreate(i, &created, i));
  }
  // Splits must not move values.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(tree.Find(i), ptrs[static_cast<size_t>(i)]);
    EXPECT_EQ(ptrs[static_cast<size_t>(i)]->value, i);
  }
  EXPECT_GT(tree.Height(), 1);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, DescendingInsertOrder) {
  BPlusTree<Payload> tree;
  for (int i = 5000; i >= 0; --i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 5001u);
  for (int i = 0; i <= 5000; i += 97) {
    ASSERT_NE(tree.Find(i), nullptr);
  }
}

TEST(BPlusTreeTest, ScanRange) {
  BPlusTree<Payload> tree;
  for (int i = 0; i < 1000; i += 2) {  // even keys only
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  std::vector<int64_t> keys;
  tree.Scan(100, 200, [&](int64_t k, Payload*) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 51u);
  EXPECT_EQ(keys.front(), 100);
  EXPECT_EQ(keys.back(), 200);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_EQ(keys[i], keys[i - 1] + 2);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  BPlusTree<Payload> tree;
  for (int i = 0; i < 100; ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  int visited = 0;
  tree.Scan(0, 99, [&](int64_t, Payload*) { return ++visited < 10; });
  EXPECT_EQ(visited, 10);
}

TEST(BPlusTreeTest, ScanFullRangeWithNegativeKeys) {
  BPlusTree<Payload> tree;
  for (int64_t k : {-100, -1, 0, 1, 100}) {
    bool created;
    tree.GetOrCreate(k, &created, 0);
  }
  std::vector<int64_t> keys;
  tree.Scan(INT64_MIN, INT64_MAX, [&](int64_t k, Payload*) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{-100, -1, 0, 1, 100}));
}

TEST(BPlusTreeTest, EraseRemovesKey) {
  BPlusTree<Payload> tree;
  for (int i = 0; i < 500; ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  EXPECT_TRUE(tree.Erase(250));
  EXPECT_FALSE(tree.Erase(250));
  EXPECT_EQ(tree.Find(250), nullptr);
  EXPECT_EQ(tree.size(), 499u);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, ConcurrentGetOrCreateSameKeys) {
  BPlusTree<Payload> tree;
  constexpr int kKeys = 500;
  std::vector<std::thread> threads;
  std::atomic<int> creates{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kKeys; ++i) {
        bool created;
        Payload* p = tree.GetOrCreate(i, &created, i);
        if (created) creates.fetch_add(1);
        ASSERT_NE(p, nullptr);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Each key created exactly once despite 4 racing threads.
  EXPECT_EQ(creates.load(), kKeys);
  EXPECT_EQ(tree.size(), static_cast<size_t>(kKeys));
  tree.CheckInvariants();
}

// Property test: a random stream of insert/find/erase/scan operations
// matches a std::map oracle exactly.
class BTreeOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeOracleTest, MatchesStdMap) {
  Rng rng(GetParam());
  BPlusTree<Payload> tree;
  std::map<int64_t, int> oracle;
  for (int op = 0; op < 20000; ++op) {
    int64_t key = rng.UniformInt(-500, 500);
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert-if-absent
        bool created;
        Payload* p = tree.GetOrCreate(key, &created, static_cast<int>(op));
        bool oracle_created = oracle.emplace(key, op).second;
        EXPECT_EQ(created, oracle_created);
        EXPECT_EQ(p->value, oracle[key]);
        break;
      }
      case 4: {  // erase
        bool erased = tree.Erase(key);
        EXPECT_EQ(erased, oracle.erase(key) > 0);
        break;
      }
      case 5:
      case 6:
      case 7: {  // find
        Payload* p = tree.Find(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(p->value, it->second);
        }
        break;
      }
      default: {  // bounded scan
        int64_t lo = key, hi = key + static_cast<int64_t>(rng.UniformInt(0, 100));
        std::vector<int64_t> got;
        tree.Scan(lo, hi, [&](int64_t k, Payload*) {
          got.push_back(k);
          return true;
        });
        std::vector<int64_t> want;
        for (auto it = oracle.lower_bound(lo);
             it != oracle.end() && it->first <= hi; ++it) {
          want.push_back(it->first);
        }
        EXPECT_EQ(got, want);
        break;
      }
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeOracleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace aets
