// Deterministic simulation harness with a snapshot-consistency oracle.
//
// Every scenario: record a seeded workload through a real PrimaryDb +
// LogShipper, build the single-threaded reference model, replay the stream
// into a replayer under test, and assert snapshot exactness, watermark
// monotonicity, transaction atomicity, and GC safety against the model
// (src/aets/sim/). All five replayers run the same scenarios.
//
// This binary has its own main(): `--sim_iters=N` (or AETS_SIM_ITERS) scales
// the scenario count; `--seed=N` (or AETS_TEST_SEED) re-seeds the whole
// suite, and every failure prints the seed plus the shrunk scenario.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "aets/baselines/atr_replayer.h"
#include "aets/baselines/c5_replayer.h"
#include "aets/baselines/serial_replayer.h"
#include "aets/baselines/tplr_replayer.h"
#include "aets/common/clock.h"
#include "aets/replay/aets_replayer.h"
#include "aets/sim/oracle.h"
#include "aets/sim/reference_model.h"
#include "aets/sim/scenario.h"
#include "aets/sim/sim_clock.h"
#include "test_seed.h"

static int g_sim_iters = 50;
// Cross-epoch pipeline depth (DESIGN.md §9) applied to every replayer under
// test; 0 keeps each factory's built-in default. Set via --pipeline_depth=N
// or AETS_PIPELINE_DEPTH. CI runs the oracle at depth 1 and depth 3.
static int g_pipeline_depth = 0;
// Shard count for the sharded cross-snapshot suite (DESIGN.md §11). 0 runs
// the built-in N ∈ {2, 3, 4} matrix; --shard_count=N (or AETS_SHARD_COUNT)
// pins every sharded test to one N. CI smoke runs pin N=3.
static int g_shard_count = 0;

namespace aets {
namespace {

using sim::ScenarioResult;
using sim::ScenarioSpec;
using sim::SimMode;

// ---------------------------------------------------------------------------
// Virtual time: SimClock behind the common/clock.h seam.

TEST(SimClockTest, InstalledClockDrivesMonotonicTime) {
  sim::SimClock clock(/*start_ns=*/5'000'000'000);
  {
    sim::ScopedSimClock scoped(&clock);
    EXPECT_EQ(MonotonicNanos(), 5'000'000'000);
    EXPECT_EQ(MonotonicMicros(), 5'000'000);
    clock.AdvanceMicros(250);
    EXPECT_EQ(MonotonicMicros(), 5'000'250);
    // Virtual time is frozen: repeated reads see the same instant.
    EXPECT_EQ(MonotonicNanos(), MonotonicNanos());
  }
  // Restored: real time moves again and is far from the simulated origin.
  EXPECT_NE(MonotonicNanos(), 5'000'250'000);
}

TEST(SimClockTest, AdvanceToNeverMovesBackwards) {
  sim::SimClock clock(1000);
  clock.AdvanceToNanos(500);
  EXPECT_EQ(clock.NowNanos(), 1000);
  clock.AdvanceToNanos(2000);
  EXPECT_EQ(clock.NowNanos(), 2000);
}

TEST(SimScheduleTest, TranscriptIsAFunctionOfTheSeed) {
  auto run = [](uint64_t seed) {
    sim::SimClock clock;
    sim::SimSchedule sched(&clock, seed);
    int heartbeat_fires = 0;
    int gc_fires = 0;
    // Jittered heartbeat / GC / watermark timers — the background cadences
    // of the real system, interleaved deterministically.
    sched.AddTimer("heartbeat", 50'000, 0.2, [&] { ++heartbeat_fires; });
    sched.AddTimer("gc", 100'000, 0.4, [&] { ++gc_fires; });
    sched.AddTimer("watermark", 500, 0.1, [] {});
    sched.RunUntilMicros(clock.NowMicros() + 1'000'000);
    return std::make_pair(sched.transcript(), heartbeat_fires + gc_fires);
  };
  uint64_t seed = test::DeriveSeed(1);
  auto first = run(seed);
  auto second = run(seed);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_GT(first.first.size(), 100u);  // the fast timer dominates
}

TEST(SimScheduleTest, TiesBreakByRegistrationOrder) {
  sim::SimClock clock;
  sim::SimSchedule sched(&clock, /*seed=*/7);
  sched.AddTimer("a", 100, 0.0, [] {});
  sched.AddTimer("b", 100, 0.0, [] {});
  sched.Step(4);
  EXPECT_EQ(sched.transcript(),
            (std::vector<std::string>{"a", "b", "a", "b"}));
}

// ---------------------------------------------------------------------------
// The replayer factories under test (same shapes as the chaos suite).

struct SimReplayerSpec {
  const char* label;
  sim::ReplayerFactory make;
};

// The global --pipeline_depth override, or each factory's `fallback` when
// the flag is unset.
int DepthOr(int fallback) {
  return g_pipeline_depth > 0 ? g_pipeline_depth : fallback;
}

std::vector<SimReplayerSpec> AllReplayerSpecs() {
  std::vector<SimReplayerSpec> specs;
  // Two AETS grouping configurations at the extreme pipeline depths (unless
  // --pipeline_depth pins everything): serial hand-off vs a deep pipeline.
  specs.push_back({"aets-per-table-d1", [](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o;
                     o.replay_threads = 3;
                     o.commit_threads = 2;
                     o.grouping = GroupingMode::kPerTable;
                     o.pipeline_depth = DepthOr(1);
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"aets-per-table-d3", [](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o;
                     o.replay_threads = 3;
                     o.commit_threads = 2;
                     o.grouping = GroupingMode::kPerTable;
                     o.pipeline_depth = DepthOr(3);
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  // Tiny column chunks: every generation splits into many chunks, so the
  // chaos scenarios drive the rebuild router (dirty keys across chunk
  // boundaries, all-delete fast path, compaction) and the oracle's
  // column-parity probe over multi-chunk snapshots.
  specs.push_back({"aets-tiny-chunks", [](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o;
                     o.replay_threads = 3;
                     o.commit_threads = 2;
                     o.grouping = GroupingMode::kPerTable;
                     o.pipeline_depth = DepthOr(2);
                     o.column_chunk_rows = 8;
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"aets-by-rate", [](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o;
                     o.replay_threads = 3;
                     o.commit_threads = 2;
                     o.grouping = GroupingMode::kByAccessRate;
                     o.initial_rates =
                         std::vector<double>(c->num_tables(), 5.0);
                     o.pipeline_depth = DepthOr(o.pipeline_depth);
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"tplr", [](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o = TplrBaselineOptions(/*replay_threads=*/3);
                     o.pipeline_depth = DepthOr(o.pipeline_depth);
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"atr", [](const Catalog* c, EpochChannel* ch) {
                     AtrOptions o;
                     o.workers = 3;
                     o.pipeline_depth = DepthOr(o.pipeline_depth);
                     return std::make_unique<AtrReplayer>(c, ch, o);
                   }});
  specs.push_back({"c5", [](const Catalog* c, EpochChannel* ch) {
                     C5Options o;
                     o.workers = 3;
                     o.watermark_period_us = 500;
                     o.pipeline_depth = DepthOr(o.pipeline_depth);
                     return std::make_unique<C5Replayer>(c, ch, o);
                   }});
  specs.push_back({"serial", [](const Catalog* c, EpochChannel* ch) {
                     return std::make_unique<SerialReplayer>(c, ch,
                                                             DepthOr(2));
                   }});
  return specs;
}

std::string FailureReport(const char* label, const ScenarioSpec& spec,
                          const ScenarioResult& result) {
  std::string out = std::string(label) + " violated invariants on:\n" +
                    sim::DescribeScenario(spec) + "\n";
  for (const sim::Violation& v : result.violations) {
    out += "  [" + v.invariant + "] " + v.detail + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reference model sanity: it must agree with the serial oracle replayer by
// construction (two independent implementations of the same semantics).

TEST(ReferenceModelTest, AgreesWithSerialReplayerOnSeededWorkloads) {
  for (int i = 0; i < 5; ++i) {
    ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(100 + i));
    spec.mode = SimMode::kLockstep;
    ScenarioResult result =
        sim::RunScenario(spec, [](const Catalog* c, EpochChannel* ch) {
          return std::make_unique<SerialReplayer>(c, ch);
        });
    EXPECT_TRUE(result.ok()) << FailureReport("serial", spec, result);
  }
}

// ---------------------------------------------------------------------------
// The differential oracle across all five replayers.

TEST(SimOracleTest, SeededScenariosAllReplayersLockstep) {
  auto specs = AllReplayerSpecs();
  for (int i = 0; i < g_sim_iters; ++i) {
    ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(1000 + i));
    spec.mode = SimMode::kLockstep;
    for (const SimReplayerSpec& rs : specs) {
      ScenarioResult result = sim::RunScenario(spec, rs.make);
      ASSERT_TRUE(result.ok()) << FailureReport(rs.label, spec, result);
    }
  }
}

TEST(SimOracleTest, SeededScenariosAllReplayersConcurrent) {
  // Faulty link + prober threads + (scenario-dependent) live GC. Fewer
  // iterations: each run costs recovery windows and thread churn.
  auto specs = AllReplayerSpecs();
  int iters = g_sim_iters / 5 + 1;
  for (int i = 0; i < iters; ++i) {
    ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(2000 + i));
    spec.mode = SimMode::kConcurrent;
    for (const SimReplayerSpec& rs : specs) {
      ScenarioResult result = sim::RunScenario(spec, rs.make);
      ASSERT_TRUE(result.ok()) << FailureReport(rs.label, spec, result);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded replay: N backup shards behind the ShardedBackup facade, checked
// through the same oracle. Every cross-shard (qts, table-set) probe must
// match the shard-free reference model exactly (ISSUE 7 acceptance).

std::vector<int> ShardCounts() {
  if (g_shard_count > 1) return {g_shard_count};
  return {2, 3, 4};
}

TEST(ShardedSimOracleTest, SeededScenariosLockstep) {
  auto specs = AllReplayerSpecs();
  int iters = g_sim_iters / 5 + 1;
  for (int shards : ShardCounts()) {
    for (int i = 0; i < iters; ++i) {
      ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(4000 + i));
      spec.mode = SimMode::kLockstep;
      spec.shard_count = shards;
      for (const SimReplayerSpec& rs : specs) {
        ScenarioResult result = sim::RunScenario(spec, rs.make);
        ASSERT_TRUE(result.ok())
            << "shards=" << shards << " "
            << FailureReport(rs.label, spec, result);
      }
    }
  }
}

TEST(ShardedSimOracleTest, ConcurrentUnderAcceptanceFaultMix) {
  // The acceptance fault mix: 5% drop + 5% dup + 1% corrupt on every shard's
  // link (each lane draws its own seeded schedule), probers pinning
  // cross-shard snapshots throughout.
  auto specs = AllReplayerSpecs();
  int iters = g_sim_iters / 10 + 1;
  for (int shards : ShardCounts()) {
    for (int i = 0; i < iters; ++i) {
      ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(5000 + i));
      spec.mode = SimMode::kConcurrent;
      spec.shard_count = shards;
      spec.faults.drop = 0.05;
      spec.faults.duplicate = 0.05;
      spec.faults.reorder = 0.0;
      spec.faults.corrupt = 0.01;
      for (const SimReplayerSpec& rs : specs) {
        ScenarioResult result = sim::RunScenario(spec, rs.make);
        ASSERT_TRUE(result.ok())
            << "shards=" << shards << " "
            << FailureReport(rs.label, spec, result);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bug injection: a tg_cmt_ts published one tick ahead of the replayed data
// (AetsOptions::test_tg_publish_skew) must be caught and shrunk to a
// minimal repro.

sim::ReplayerFactory SkewedAetsFactory() {
  return [](const Catalog* c, EpochChannel* ch) {
    AetsOptions o;
    o.replay_threads = 3;
    o.commit_threads = 2;
    o.grouping = GroupingMode::kPerTable;
    o.test_tg_publish_skew = 1;  // the injected off-by-one
    return std::make_unique<AetsReplayer>(c, ch, o);
  };
}

/// Finds the first generated scenario (over a fixed seed sequence) that
/// trips the oracle under the skewed replayer, shrinks it, and returns
/// (shrunk spec, description). Deterministic given the base seed.
bool FindAndShrinkSkewBug(ScenarioSpec* shrunk, std::string* description) {
  sim::ReplayerFactory factory = SkewedAetsFactory();
  for (int attempt = 0; attempt < 40; ++attempt) {
    ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(3000 + attempt));
    spec.mode = SimMode::kLockstep;
    ScenarioResult result = sim::RunScenario(spec, factory);
    if (result.ok()) continue;
    *shrunk = sim::ShrinkScenario(spec, factory);
    *description = sim::DescribeScenario(*shrunk);
    return true;
  }
  return false;
}

TEST(SimOracleTest, InjectedWatermarkSkewIsCaughtAndShrunk) {
  ScenarioSpec shrunk;
  std::string description;
  ASSERT_TRUE(FindAndShrinkSkewBug(&shrunk, &description))
      << "no generated scenario tripped the injected visibility bug";

  ScenarioResult result = sim::RunScenario(shrunk, SkewedAetsFactory());
  EXPECT_FALSE(result.ok());
  std::fprintf(stderr, "[sim] minimal repro (%llu violations):\n%s\n",
               static_cast<unsigned long long>(result.total_violations),
               description.c_str());

  // Acceptance: the shrunk repro is tiny, and the clean replayer passes the
  // very same scenario (the violation is the injected bug, nothing else).
  EXPECT_LE(shrunk.epochs.size(), 3u) << description;
  EXPECT_LE(sim::CountTxns(shrunk), 4u) << description;
  ScenarioResult clean = sim::RunScenario(
      shrunk, [](const Catalog* c, EpochChannel* ch) {
        AetsOptions o;
        o.replay_threads = 3;
        o.commit_threads = 2;
        o.grouping = GroupingMode::kPerTable;
        return std::make_unique<AetsReplayer>(c, ch, o);
      });
  EXPECT_TRUE(clean.ok()) << FailureReport("aets-clean", shrunk, clean);
}

TEST(ShardedSimOracleTest, CrossShardSkewIsCaughtAndShrunk) {
  // The same injected off-by-one, but with every shard's replayer skewed and
  // the oracle probing through the ShardedBackup facade: the shrinker must
  // reduce a cross-shard violation just like a single-backup one (the shrunk
  // spec keeps its shard_count, so every shrink candidate re-runs sharded).
  sim::ReplayerFactory factory = SkewedAetsFactory();
  ScenarioSpec shrunk;
  bool found = false;
  for (int attempt = 0; attempt < 40 && !found; ++attempt) {
    ScenarioSpec spec = sim::GenerateScenario(test::DeriveSeed(6000 + attempt));
    spec.mode = SimMode::kLockstep;
    spec.shard_count = 2;
    ScenarioResult result = sim::RunScenario(spec, factory);
    if (result.ok()) continue;
    shrunk = sim::ShrinkScenario(spec, factory);
    found = true;
  }
  ASSERT_TRUE(found)
      << "no generated scenario tripped the injected bug under sharding";
  EXPECT_EQ(shrunk.shard_count, 2);
  std::string description = sim::DescribeScenario(shrunk);
  ScenarioResult result = sim::RunScenario(shrunk, factory);
  EXPECT_FALSE(result.ok()) << description;
  EXPECT_LE(shrunk.epochs.size(), 3u) << description;
  EXPECT_LE(sim::CountTxns(shrunk), 4u) << description;
  // The clean factory passes the exact shrunk sharded scenario.
  ScenarioResult clean = sim::RunScenario(
      shrunk, [](const Catalog* c, EpochChannel* ch) {
        AetsOptions o;
        o.replay_threads = 3;
        o.commit_threads = 2;
        o.grouping = GroupingMode::kPerTable;
        return std::make_unique<AetsReplayer>(c, ch, o);
      });
  EXPECT_TRUE(clean.ok()) << FailureReport("aets-clean", shrunk, clean);
}

TEST(SimOracleTest, ShrinkingIsDeterministic) {
  // The whole find+shrink pipeline replayed twice from the same base seed
  // must produce the identical minimal counterexample.
  ScenarioSpec first_spec, second_spec;
  std::string first_desc, second_desc;
  ASSERT_TRUE(FindAndShrinkSkewBug(&first_spec, &first_desc));
  ASSERT_TRUE(FindAndShrinkSkewBug(&second_spec, &second_desc));
  EXPECT_EQ(first_desc, second_desc);
  // And re-running the shrunk spec reproduces the same first invariant.
  ScenarioResult a = sim::RunScenario(first_spec, SkewedAetsFactory());
  ScenarioResult b = sim::RunScenario(first_spec, SkewedAetsFactory());
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.first_invariant, b.first_invariant);
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  aets::test::InitSeedFromArgs(&argc, argv);
  aets::test::InstallSeedBanner();
  if (const char* env = std::getenv("AETS_SIM_ITERS")) {
    g_sim_iters = std::atoi(env);
  }
  if (const char* env = std::getenv("AETS_PIPELINE_DEPTH")) {
    g_pipeline_depth = std::atoi(env);
  }
  if (const char* env = std::getenv("AETS_SHARD_COUNT")) {
    g_shard_count = std::atoi(env);
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sim_iters=", 12) == 0) {
      g_sim_iters = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--pipeline_depth=", 17) == 0) {
      g_pipeline_depth = std::atoi(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--shard_count=", 14) == 0) {
      g_shard_count = std::atoi(argv[i] + 14);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (g_sim_iters < 1) g_sim_iters = 1;
  if (g_pipeline_depth < 0) g_pipeline_depth = 0;
  if (g_shard_count < 0) g_shard_count = 0;
  return RUN_ALL_TESTS();
}
