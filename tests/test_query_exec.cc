// Analytic query executor tests: the CH Q1/Q6 aggregations evaluated on a
// replaying backup must equal the primary's answers at the same snapshot —
// including at a snapshot taken mid-stream.

#include <gtest/gtest.h>

#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/workload/driver.h"
#include "aets/workload/query_exec.h"

namespace aets {
namespace {

class QueryExecTest : public ::testing::Test {
 protected:
  QueryExecTest() {
    TpccConfig config;
    config.warehouses = 1;
    config.items = 80;
    config.customers_per_district = 8;
    config.init_orders_per_district = 3;
    ch_ = std::make_unique<ChBenchmarkWorkload>(config);
  }

  std::unique_ptr<ChBenchmarkWorkload> ch_;
};

TEST_F(QueryExecTest, Q1AndQ6MatchPrimaryAfterReplay) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  LogShipper shipper(/*epoch_size=*/32);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(1);
  ch_->Load(&db, &rng);
  Timestamp mid_ts;
  {
    OltpDriver oltp(ch_.get(), &db, 1);
    oltp.Run(200);
    mid_ts = db.last_commit_ts();
    oltp.Run(200);
  }
  shipper.Finish();

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  AetsReplayer backup(&ch_->catalog(), &channel, options);
  ASSERT_TRUE(backup.Start().ok());
  backup.Stop();
  ASSERT_TRUE(backup.error().ok());

  ChQueryExecutor on_primary(ch_.get(), &db.store());
  ChQueryExecutor on_backup(ch_.get(), backup.store());
  Timestamp final_ts = db.last_commit_ts();

  for (Timestamp snapshot : {mid_ts, final_ts}) {
    auto q1_primary = on_primary.RunQ1(snapshot, INT64_MAX);
    auto q1_backup = on_backup.RunQ1(snapshot, INT64_MAX);
    ASSERT_EQ(q1_primary.size(), q1_backup.size());
    for (const auto& [ol_number, row] : q1_primary) {
      ASSERT_TRUE(q1_backup.count(ol_number));
      EXPECT_TRUE(q1_backup.at(ol_number) == row) << "ol " << ol_number;
    }
    EXPECT_TRUE(on_backup.RunQ6(snapshot, 1, 5) ==
                on_primary.RunQ6(snapshot, 1, 5));
  }
  // Q1 has 5..15 ol_number buckets; the workload must have produced them.
  EXPECT_GE(on_primary.RunQ1(final_ts, INT64_MAX).size(), 5u);
}

TEST_F(QueryExecTest, Q1DeliveryCutoffFilters) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  Rng rng(2);
  ch_->Load(&db, &rng);
  OltpDriver oltp(ch_.get(), &db, 2);
  oltp.Run(150);

  ChQueryExecutor exec(ch_.get(), &db.store());
  Timestamp ts = db.last_commit_ts();
  // Cutoff 0 keeps only undelivered lines (ol_delivery_d == 0); INT64_MAX
  // keeps everything; the filtered count must be strictly smaller whenever
  // deliveries happened.
  auto all = exec.RunQ1(ts, INT64_MAX);
  auto undelivered = exec.RunQ1(ts, 0);
  uint64_t all_count = 0, undelivered_count = 0;
  for (const auto& [k, v] : all) all_count += v.count;
  for (const auto& [k, v] : undelivered) undelivered_count += v.count;
  EXPECT_LE(undelivered_count, all_count);
  EXPECT_GT(all_count, 0u);
}

TEST_F(QueryExecTest, Q6QuantityRange) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  Rng rng(3);
  ch_->Load(&db, &rng);
  OltpDriver oltp(ch_.get(), &db, 3);
  oltp.Run(100);

  ChQueryExecutor exec(ch_.get(), &db.store());
  Timestamp ts = db.last_commit_ts();
  auto narrow = exec.RunQ6(ts, 3, 3);
  auto wide = exec.RunQ6(ts, 1, 10);
  auto empty = exec.RunQ6(ts, 100, 200);
  EXPECT_LE(narrow.lines, wide.lines);
  EXPECT_GT(wide.lines, 0u);
  EXPECT_EQ(empty.lines, 0u);
  EXPECT_DOUBLE_EQ(empty.revenue, 0.0);
  EXPECT_GE(wide.revenue, narrow.revenue);
}

}  // namespace
}  // namespace aets
