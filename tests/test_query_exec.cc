// Analytic query executor tests: the CH Q1/Q6 aggregations evaluated on a
// replaying backup must equal the primary's answers at the same snapshot —
// including at a snapshot taken mid-stream.

#include <gtest/gtest.h>

#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/workload/driver.h"
#include "aets/workload/query_exec.h"

namespace aets {
namespace {

class QueryExecTest : public ::testing::Test {
 protected:
  QueryExecTest() {
    TpccConfig config;
    config.warehouses = 1;
    config.items = 80;
    config.customers_per_district = 8;
    config.init_orders_per_district = 3;
    ch_ = std::make_unique<ChBenchmarkWorkload>(config);
  }

  std::unique_ptr<ChBenchmarkWorkload> ch_;
};

TEST_F(QueryExecTest, Q1AndQ6MatchPrimaryAfterReplay) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  LogShipper shipper(/*epoch_size=*/32);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(1);
  ch_->Load(&db, &rng);
  Timestamp mid_ts;
  {
    OltpDriver oltp(ch_.get(), &db, 1);
    oltp.Run(200);
    mid_ts = db.last_commit_ts();
    oltp.Run(200);
  }
  shipper.Finish();

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  AetsReplayer backup(&ch_->catalog(), &channel, options);
  ASSERT_TRUE(backup.Start().ok());
  backup.Stop();
  ASSERT_TRUE(backup.error().ok());

  ChQueryExecutor on_primary(ch_.get(), &db.store());
  ChQueryExecutor on_backup(ch_.get(), backup.store());
  Timestamp final_ts = db.last_commit_ts();

  for (Timestamp snapshot : {mid_ts, final_ts}) {
    auto q1_primary = on_primary.RunQ1(snapshot, INT64_MAX);
    auto q1_backup = on_backup.RunQ1(snapshot, INT64_MAX);
    ASSERT_EQ(q1_primary.size(), q1_backup.size());
    for (const auto& [ol_number, row] : q1_primary) {
      ASSERT_TRUE(q1_backup.count(ol_number));
      EXPECT_TRUE(q1_backup.at(ol_number) == row) << "ol " << ol_number;
    }
    EXPECT_TRUE(on_backup.RunQ6(snapshot, 1, 5) ==
                on_primary.RunQ6(snapshot, 1, 5));
  }
  // Q1 has 5..15 ol_number buckets; the workload must have produced them.
  EXPECT_GE(on_primary.RunQ1(final_ts, INT64_MAX).size(), 5u);
}

TEST_F(QueryExecTest, ColumnPathMatchesRowPathThroughReplay) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  LogShipper shipper(/*epoch_size=*/32);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(4);
  ch_->Load(&db, &rng);
  Timestamp mid_ts;
  {
    OltpDriver oltp(ch_.get(), &db, 4);
    oltp.Run(200);
    mid_ts = db.last_commit_ts();
    oltp.Run(200);
  }
  shipper.Finish();

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.column_chunk_rows = 64;  // many chunks even at test scale
  AetsReplayer backup(&ch_->catalog(), &channel, options);
  ASSERT_TRUE(backup.Start().ok());
  backup.Stop();
  ASSERT_TRUE(backup.error().ok());
  ASSERT_NE(backup.column_store(), nullptr);

  // Same store, two scan paths: vectorized chunks + residual top-up vs the
  // row-store version-chain walk. Aggregates must be identical at a
  // mid-stream snapshot (residual-heavy) and at the final one.
  ChQueryExecutor rows(ch_.get(), backup.store());
  ChQueryExecutor cols(ch_.get(), backup.store(), backup.column_store());
  for (Timestamp snapshot : {mid_ts, db.last_commit_ts()}) {
    auto q1_rows = rows.RunQ1(snapshot, INT64_MAX);
    auto q1_cols = cols.RunQ1(snapshot, INT64_MAX);
    ASSERT_EQ(q1_rows.size(), q1_cols.size()) << "snapshot " << snapshot;
    for (const auto& [ol_number, row] : q1_rows) {
      ASSERT_TRUE(q1_cols.count(ol_number));
      EXPECT_TRUE(q1_cols.at(ol_number) == row)
          << "ol " << ol_number << " snapshot " << snapshot;
    }
    EXPECT_TRUE(cols.RunQ6(snapshot, 1, 5) == rows.RunQ6(snapshot, 1, 5));
    EXPECT_TRUE(cols.RunQ1(snapshot, 0) == rows.RunQ1(snapshot, 0));
  }
  // Well-typed TPC-C data: neither path may have flagged anything.
  EXPECT_EQ(rows.column_type_mismatches(), 0u);
  EXPECT_EQ(cols.column_type_mismatches(), 0u);
  EXPECT_TRUE(rows.error().ok());
  EXPECT_TRUE(cols.error().ok());
}

// Regression for the silent-coercion bug: a scanned row whose column is
// missing or of the wrong type used to contribute 0 to the aggregate with
// no trace. Now every such access is counted and the first one latches
// error(). (Pre-fix this test fails: no mismatch was ever recorded.)
TEST_F(QueryExecTest, MismatchedColumnsAreCountedNotSilentlyCoerced) {
  TableStore store(ch_->catalog());
  TableId ol = ch_->tpcc().orderline();
  constexpr Timestamp kTs = 10;
  auto put = [&](int64_t key, std::vector<ColumnValue> values) {
    store.GetTable(ol)->ApplyCommitted(
        LogRecord::Dml(LogRecordType::kInsert, static_cast<Lsn>(key), 1, kTs,
                       ol, key, std::move(values)),
        kTs);
  };
  // Well-formed line: number=1, quantity=5, amount=2.5, delivery_d=1.
  put(1, {{1, Value(int64_t{1})},
          {4, Value(int64_t{5})},
          {5, Value(2.5)},
          {6, Value(int64_t{1})}});
  // ol_amount is a string: in-range quantity forces the amount read.
  put(2, {{1, Value(int64_t{1})},
          {4, Value(int64_t{5})},
          {5, Value("not-a-double")},
          {6, Value(int64_t{1})}});
  // ol_quantity missing entirely.
  put(3, {{1, Value(int64_t{1})}, {5, Value(1.0)}, {6, Value(int64_t{1})}});

  ChQueryExecutor exec(ch_.get(), &store);
  auto q6 = exec.RunQ6(kTs, 1, 10);
  // The malformed amount still aggregates as 0 (row counted), the missing
  // quantity reads as 0 (row filtered out) — but both are now loud.
  EXPECT_EQ(q6.lines, 2u);
  EXPECT_DOUBLE_EQ(q6.revenue, 2.5);
  EXPECT_EQ(exec.column_type_mismatches(), 2u);
  EXPECT_TRUE(exec.error().IsCorruption()) << exec.error().ToString();

  // The vectorized path must flag the exact same accesses: the string
  // amount lands in the chunk's irregular overflow, the missing quantity
  // in the has-bitmap check.
  storage::ColumnStore columns(&ch_->catalog(), &store);
  for (int64_t key : {1, 2, 3}) columns.NoteDirty(ol, key, kTs);
  columns.SeedFromRows(kTs);
  ChQueryExecutor vec(ch_.get(), &store, &columns);
  auto q6_vec = vec.RunQ6(kTs, 1, 10);
  EXPECT_TRUE(q6_vec == q6);
  EXPECT_EQ(vec.column_type_mismatches(), 2u);
  EXPECT_TRUE(vec.error().IsCorruption());
}

TEST_F(QueryExecTest, Q1DeliveryCutoffFilters) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  Rng rng(2);
  ch_->Load(&db, &rng);
  OltpDriver oltp(ch_.get(), &db, 2);
  oltp.Run(150);

  ChQueryExecutor exec(ch_.get(), &db.store());
  Timestamp ts = db.last_commit_ts();
  // Cutoff 0 keeps only undelivered lines (ol_delivery_d == 0); INT64_MAX
  // keeps everything; the filtered count must be strictly smaller whenever
  // deliveries happened.
  auto all = exec.RunQ1(ts, INT64_MAX);
  auto undelivered = exec.RunQ1(ts, 0);
  uint64_t all_count = 0, undelivered_count = 0;
  for (const auto& [k, v] : all) all_count += v.count;
  for (const auto& [k, v] : undelivered) undelivered_count += v.count;
  EXPECT_LE(undelivered_count, all_count);
  EXPECT_GT(all_count, 0u);
}

TEST_F(QueryExecTest, Q6QuantityRange) {
  LogicalClock clock;
  PrimaryDb db(&ch_->catalog(), &clock);
  Rng rng(3);
  ch_->Load(&db, &rng);
  OltpDriver oltp(ch_.get(), &db, 3);
  oltp.Run(100);

  ChQueryExecutor exec(ch_.get(), &db.store());
  Timestamp ts = db.last_commit_ts();
  auto narrow = exec.RunQ6(ts, 3, 3);
  auto wide = exec.RunQ6(ts, 1, 10);
  auto empty = exec.RunQ6(ts, 100, 200);
  EXPECT_LE(narrow.lines, wide.lines);
  EXPECT_GT(wide.lines, 0u);
  EXPECT_EQ(empty.lines, 0u);
  EXPECT_DOUBLE_EQ(empty.revenue, 0.0);
  EXPECT_GE(wide.revenue, narrow.revenue);
}

}  // namespace
}  // namespace aets
