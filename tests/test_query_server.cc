// The concurrent snapshot-query serving path (DESIGN.md §12): N client
// threads scanning over real sockets while replay advances underneath, every
// response checked EXACTLY against the ReferenceModel at its pinned
// timestamp; admission-control overflow shedding with kBusy; and slow-reader
// isolation — parked query clients must never stall epoch shipping or
// replay. Runs under the TSan CI job: the server's session pool, the replay
// thread, and the test's client threads all race here on purpose.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aets/baselines/serial_replayer.h"
#include "aets/common/rng.h"
#include "aets/net/frame_io.h"
#include "aets/net/query_server.h"
#include "aets/net/socket.h"
#include "aets/replay/aets_replayer.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/snapshot_coordinator.h"
#include "aets/replication/log_shipper.h"
#include "aets/sim/reference_model.h"
#include "test_seed.h"

namespace aets {
namespace net {
namespace {

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  return catalog;
}

void RunRandomWorkload(PrimaryDb* db, int num_tables, int num_txns,
                       uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < num_txns; ++i) {
    PrimaryTxn txn = db->Begin();
    int writes = static_cast<int>(rng.UniformInt(1, 5));
    for (int w = 0; w < writes; ++w) {
      TableId table = static_cast<TableId>(rng.UniformInt(0, num_tables - 1));
      int64_t key = rng.UniformInt(0, 149);
      int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {
        txn.Insert(table, key,
                   {{0, Value(static_cast<int64_t>(i))},
                    {1, Value(rng.AlphaString(4, 12))}});
      } else if (kind < 9) {
        txn.Update(table, key, {{0, Value(static_cast<int64_t>(i * 10))}});
      } else {
        txn.Delete(table, key);
      }
    }
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
}

/// Primary + shipper + one serial backup + a tee channel recording the exact
/// epoch stream for the ReferenceModel. No GC runs, so every version stays
/// readable and any pinned timestamp can be re-checked after the fact.
struct QueryRig {
  explicit QueryRig(int num_tables, size_t epoch_size = 8)
      : num_tables(num_tables),
        catalog(MakeCatalog(num_tables)),
        db(catalog.get(), &clock),
        shipper(epoch_size, /*retention_capacity=*/4096),
        replay_channel(4096),
        tee(0),
        replayer(catalog.get(), &replay_channel) {
    shipper.AttachChannel(&replay_channel);
    shipper.AttachChannel(&tee);
    db.SetCommitSink([this](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
    coordinator.AttachShard([this] { return replayer.GlobalVisibleTs(); });
  }

  /// Drains the tee into a fresh model; call after shipper.Finish().
  sim::ReferenceModel BuildModel() {
    sim::ReferenceModel model(static_cast<size_t>(num_tables));
    while (auto epoch = tee.TryReceive()) {
      AETS_CHECK(model.Apply(*epoch).ok());
    }
    return model;
  }

  int num_tables;
  std::unique_ptr<Catalog> catalog;
  LogicalClock clock;
  PrimaryDb db;
  LogShipper shipper;
  EpochChannel replay_channel;
  EpochChannel tee;
  SerialReplayer replayer;
  GlobalSnapshotCoordinator coordinator;
};

struct RecordedScan {
  TableId table = 0;
  Timestamp pinned_ts = 0;
  uint64_t digest = 0;
  uint64_t row_count = 0;
  std::map<int64_t, Row> rows;
};

TEST(QueryServerTest, ConcurrentScansAreExactAgainstTheReferenceModel) {
  constexpr int kTables = 3;
  constexpr int kClients = 6;
  QueryRig rig(kTables);
  ASSERT_TRUE(rig.replayer.Start().ok());

  QueryServerOptions options;
  options.max_sessions = kClients;
  options.admission_queue = 2 * kClients;
  options.io_timeout_ms = 5'000;
  QueryServer server(&rig.replayer, &rig.coordinator, options);
  ASSERT_TRUE(server.Start(0).ok());

  // The writer: commits in bursts with heartbeats in between, so the safe
  // frontier the queries pin keeps moving while they run.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int burst = 0; burst < 12; ++burst) {
      RunRandomWorkload(&rig.db, kTables, 50,
                        test::DeriveSeed(10 + static_cast<uint64_t>(burst)));
      rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::vector<RecordedScan>> recorded(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(test::DeriveSeed(100 + static_cast<uint64_t>(c)));
      Result<QueryClient> client =
          QueryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      // Keep scanning until the writer finishes, then take one last scan so
      // every client also observes the final frontier.
      bool last_pass = false;
      while (!last_pass) {
        last_pass = writer_done.load(std::memory_order_acquire);
        TableId table =
            static_cast<TableId>(rng.UniformInt(0, kTables - 1));
        Result<QueryClient::ScanResult> scan =
            client->Scan(table, /*snapshot_ts=*/0, /*want_rows=*/true);
        ASSERT_TRUE(scan.ok()) << scan.status().ToString();
        ASSERT_FALSE(scan->busy);  // queue is sized for all clients
        RecordedScan record;
        record.table = table;
        record.pinned_ts = scan->pinned_ts;
        record.digest = scan->digest;
        record.row_count = scan->row_count;
        record.rows = std::move(scan->rows);
        recorded[static_cast<size_t>(c)].push_back(std::move(record));
      }
    });
  }

  writer.join();
  for (auto& thread : clients) thread.join();
  rig.shipper.Finish();
  rig.replayer.Stop();
  ASSERT_TRUE(rig.replayer.error().ok()) << rig.replayer.error().ToString();

  // Re-check every response against the reference executor at the exact
  // timestamp the server reported pinning.
  sim::ReferenceModel model = rig.BuildModel();
  size_t total = 0, nonempty_snapshots = 0;
  Timestamp max_pinned = 0;
  for (const auto& per_client : recorded) {
    total += per_client.size();
    for (const RecordedScan& scan : per_client) {
      if (scan.pinned_ts == 0) {
        // Served before the first heartbeat/commit was replayed.
        EXPECT_EQ(scan.row_count, 0u);
        EXPECT_TRUE(scan.rows.empty());
        continue;
      }
      ++nonempty_snapshots;
      max_pinned = std::max(max_pinned, scan.pinned_ts);
      std::map<int64_t, Row> expect = model.RowsAt(scan.table, scan.pinned_ts);
      ASSERT_EQ(scan.rows, expect)
          << "table " << scan.table << " pinned_ts " << scan.pinned_ts;
      EXPECT_EQ(scan.row_count, expect.size());
      EXPECT_EQ(scan.digest, rig.replayer.store()
                                 ->GetTable(scan.table)
                                 ->DigestAt(scan.pinned_ts));
    }
  }
  EXPECT_GE(total, static_cast<size_t>(kClients));
  EXPECT_GT(nonempty_snapshots, 0u);
  // The last pass ran after the writer finished, so the final frontier must
  // have been observed by someone.
  EXPECT_GT(max_pinned, 0u);
  EXPECT_EQ(server.queries_served(), total);
  EXPECT_EQ(server.admission_rejects(), 0u);

  server.Stop();
}

TEST(QueryServerTest, ExplicitSnapshotTsIsClampedToTheSafeFrontier) {
  QueryRig rig(/*num_tables=*/2);
  ASSERT_TRUE(rig.replayer.Start().ok());
  QueryServer server(&rig.replayer, &rig.coordinator);
  ASSERT_TRUE(server.Start(0).ok());

  RunRandomWorkload(&rig.db, 2, 120, test::DeriveSeed(20));
  Timestamp mid_ts = rig.db.last_commit_ts();
  RunRandomWorkload(&rig.db, 2, 120, test::DeriveSeed(21));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
  rig.shipper.Finish();
  rig.replayer.Stop();
  ASSERT_TRUE(rig.replayer.error().ok());
  Timestamp safe = rig.coordinator.GlobalSafeTimestamp();
  ASSERT_GT(safe, mid_ts);

  sim::ReferenceModel model = rig.BuildModel();
  Result<QueryClient> client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // A historical timestamp is honored exactly.
  Result<QueryClient::ScanResult> past = client->Scan(0, mid_ts, true);
  ASSERT_TRUE(past.ok()) << past.status().ToString();
  EXPECT_EQ(past->pinned_ts, mid_ts);
  EXPECT_EQ(past->rows, model.RowsAt(0, mid_ts));

  // A future timestamp is clamped to the safe frontier, and the reply says
  // so — the client learns what snapshot it actually got.
  Result<QueryClient::ScanResult> future =
      client->Scan(0, safe + 1'000'000, true);
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(future->pinned_ts, safe);
  EXPECT_EQ(future->rows, model.RowsAt(0, safe));

  server.Stop();
}

TEST(QueryServerTest, AdmissionOverflowShedsWithBusyInsteadOfQueueing) {
  QueryRig rig(/*num_tables=*/1);
  ASSERT_TRUE(rig.replayer.Start().ok());
  RunRandomWorkload(&rig.db, 1, 40, test::DeriveSeed(30));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());

  QueryServerOptions options;
  options.max_sessions = 1;
  options.admission_queue = 1;
  options.io_timeout_ms = 5'000;
  QueryServer server(&rig.replayer, &rig.coordinator, options);
  ASSERT_TRUE(server.Start(0).ok());

  // A occupies the single session thread (sessions persist across queries).
  Result<QueryClient> a = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Scan(0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // B fills the admission queue (accepted, not yet claimed).
  Result<QueryClient> b = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(b.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // C finds house + queue full: it must get an immediate kBusy, not a stall
  // (shedding at the door is what keeps the accept loop live).
  Result<QueryClient> c = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c.ok());
  Result<QueryClient::ScanResult> shed = c->Scan(0);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_TRUE(shed->busy);
  EXPECT_GE(server.admission_rejects(), 1u);

  // Shedding never touched the replay side.
  rig.shipper.Finish();
  rig.replayer.Stop();
  EXPECT_TRUE(rig.replayer.error().ok());

  // Once A hangs up, B's queued connection gets the session and is served.
  std::thread b_scan([&] {
    Result<QueryClient::ScanResult> served = b->Scan(0);
    EXPECT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_FALSE(served->busy);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  a->Close();
  b_scan.join();

  server.Stop();
}

TEST(QueryServerTest, SlowReadersCannotStallReplayOrShipping) {
  QueryRig rig(/*num_tables=*/2);
  ASSERT_TRUE(rig.replayer.Start().ok());

  QueryServerOptions options;
  options.max_sessions = 2;
  options.admission_queue = 2;
  options.io_timeout_ms = 400;  // slow readers are evicted after this idle
  QueryServer server(&rig.replayer, &rig.coordinator, options);
  ASSERT_TRUE(server.Start(0).ok());

  // Two connections that never send (or read) anything: they pin BOTH
  // session threads until the idle deadline evicts them.
  Result<TcpSocket> slow1 = TcpSocket::Connect("127.0.0.1", server.port(), 1000);
  Result<TcpSocket> slow2 = TcpSocket::Connect("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(slow1.ok());
  ASSERT_TRUE(slow2.ok());

  // With every session slot wedged, shipping and replay must still run at
  // full rate — the query tier shares nothing with the replay path.
  RunRandomWorkload(&rig.db, 2, 300, test::DeriveSeed(40));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
  rig.shipper.Finish();
  rig.replayer.Stop();
  ASSERT_TRUE(rig.replayer.error().ok()) << rig.replayer.error().ToString();
  Timestamp final_ts = rig.db.last_commit_ts();
  EXPECT_EQ(rig.replayer.store()->DigestAt(final_ts),
            rig.db.store().DigestAt(final_ts));

  // A well-behaved client is served once the idle deadline frees a slot.
  Result<QueryClient> client =
      QueryClient::Connect("127.0.0.1", server.port(), /*io_timeout_ms=*/5000);
  ASSERT_TRUE(client.ok());
  Result<QueryClient::ScanResult> scan = client->Scan(0, 0, true);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->busy);
  sim::ReferenceModel model = rig.BuildModel();
  EXPECT_EQ(scan->rows, model.RowsAt(0, scan->pinned_ts));

  server.Stop();
}

// The bounded-pin guarantee (DESIGN.md §13): with a columnar projection,
// the server drops the GC pin as soon as the residual rows are copied out
// of the version chains — so a client that sends a query and then goes
// quiet for an arbitrary time cannot wedge the GC horizon, and a truncation
// racing the parked reader never corrupts the already-materialized reply.
TEST(QueryServerTest, SlowReaderDoesNotHoldTheGcPinUnderTruncation) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterTable("t0", Schema::Of({{"a", ColumnType::kInt64},
                                                   {"b", ColumnType::kString}}))
                  .ok());
  LogicalClock clock;
  PrimaryDb db(&catalog, &clock);
  LogShipper shipper(/*epoch_size=*/8, /*retention_capacity=*/4096);
  EpochChannel channel(4096);
  EpochChannel tee(0);
  shipper.AttachChannel(&channel);
  shipper.AttachChannel(&tee);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.column_chunk_rows = 16;
  AetsReplayer backup(&catalog, &channel, options);
  GlobalSnapshotCoordinator coordinator;
  coordinator.AttachShard([&] { return backup.GlobalVisibleTs(); });

  RunRandomWorkload(&db, 1, 200, test::DeriveSeed(60));
  shipper.ShipHeartbeat(db.AcquireHeartbeatTs());
  shipper.Finish();
  ASSERT_TRUE(backup.Start().ok());
  backup.Stop();
  ASSERT_TRUE(backup.error().ok()) << backup.error().ToString();
  ASSERT_NE(backup.ColumnStoreForTable(0), nullptr);
  Timestamp safe = coordinator.GlobalSafeTimestamp();
  ASSERT_NE(safe, kInvalidTimestamp);

  QueryServer server(&backup, &coordinator);
  ASSERT_TRUE(server.Start(0).ok());

  // A raw client: send the query, then stop reading — the reply sits in
  // the socket while we inspect the coordinator from outside.
  Result<TcpSocket> slow = TcpSocket::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(slow.ok());
  QueryBody query;
  query.snapshot_ts = 0;
  query.table_id = 0;
  query.want_rows = true;
  std::string body;
  EncodeQueryBody(query, &body);
  ASSERT_TRUE(WriteFrame(&*slow, FrameType::kQuery, body, 5000).ok());

  // The pin must be gone once the query executed, NOT once the client got
  // around to reading its reply.
  for (int spin = 0; spin < 5000 && server.queries_served() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.queries_served(), 1u);
  EXPECT_EQ(coordinator.MinPinnedTs(), kInvalidTimestamp);
  EXPECT_EQ(coordinator.GcHorizon(), coordinator.GlobalSafeTimestamp());

  // GC pressure while the reader is still parked: truncate every version
  // chain at the full safe frontier. With the pin held this would be
  // blocked at the reply's snapshot; bounded pinning lets it run.
  backup.store()->GetTable(0)->GarbageCollect(coordinator.GcHorizon());

  // The parked reader finally drains its reply: still byte-exact at the
  // pinned snapshot, because it was materialized from immutable chunk data
  // before the pin was released.
  sim::ReferenceModel model(1);
  while (auto epoch = tee.TryReceive()) ASSERT_TRUE(model.Apply(*epoch).ok());
  FrameDecoder decoder;
  std::atomic<bool> never_stop{false};
  Frame reply;
  ASSERT_TRUE(
      ReadFrame(&*slow, &decoder, 5000, 5000, never_stop, &reply).ok());
  ASSERT_EQ(reply.type, FrameType::kQueryOk);
  Result<QueryReplyBody> decoded = DecodeQueryReplyBody(reply.body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->pinned_ts, safe);
  EXPECT_EQ(decoded->rows, model.RowsAt(0, safe));
  EXPECT_EQ(decoded->digest,
            backup.store()->GetTable(0)->DigestAt(safe));

  server.Stop();
}

TEST(QueryServerTest, EmptyBackupServesAnEmptyExactSnapshot) {
  QueryRig rig(/*num_tables=*/1);
  ASSERT_TRUE(rig.replayer.Start().ok());
  QueryServer server(&rig.replayer, &rig.coordinator);
  ASSERT_TRUE(server.Start(0).ok());

  Result<QueryClient> client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Result<QueryClient::ScanResult> scan = client->Scan(0, 0, true);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->busy);
  EXPECT_EQ(scan->pinned_ts, 0u);
  EXPECT_EQ(scan->row_count, 0u);
  EXPECT_TRUE(scan->rows.empty());

  rig.shipper.Finish();
  rig.replayer.Stop();
  server.Stop();
}

TEST(QueryServerTest, UnknownTableGetsErrorAndTheSessionSurvives) {
  QueryRig rig(/*num_tables=*/1);
  ASSERT_TRUE(rig.replayer.Start().ok());
  RunRandomWorkload(&rig.db, 1, 40, test::DeriveSeed(50));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
  rig.shipper.Finish();
  rig.replayer.Stop();

  QueryServer server(&rig.replayer, &rig.coordinator);
  ASSERT_TRUE(server.Start(0).ok());
  Result<QueryClient> client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // A table id off the wire that the catalog never registered must be a
  // clean error (NOT the AETS_CHECK crash GetTable reserves for programmer
  // error)...
  Result<QueryClient::ScanResult> bad = client->Scan(/*table=*/99);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("no such table"), std::string::npos)
      << bad.status().ToString();

  // ...and the session keeps serving afterwards.
  Result<QueryClient::ScanResult> good = client->Scan(0);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_GT(good->row_count, 0u);

  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace aets
