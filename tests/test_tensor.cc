// Autograd engine tests: numeric gradient checks for every op, optimizer
// behavior, and graph mechanics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "aets/common/rng.h"
#include "aets/predictor/tensor.h"
#include "test_seed.h"

namespace aets {
namespace {

// Numeric gradient check: perturb each element of `param`, re-run
// `forward` (which must rebuild the graph and return the scalar loss), and
// compare against the autograd gradient captured by `grad_of`.
void CheckGradient(Tensor param,
                   const std::function<double()>& forward_value,
                   const std::function<std::vector<double>()>& autograd,
                   double eps = 1e-5, double tol = 1e-4) {
  std::vector<double> analytic = autograd();
  auto& data = param.data();
  for (size_t i = 0; i < data.size(); ++i) {
    double saved = data[i];
    data[i] = saved + eps;
    double up = forward_value();
    data[i] = saved - eps;
    double down = forward_value();
    data[i] = saved;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol)
        << "param element " << i << " analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

// Relative-error gradient check: like CheckGradient but the acceptance
// criterion is |analytic - numeric| / max(|analytic|, |numeric|, floor)
// < rel_tol, which stays meaningful across the wide gradient magnitudes a
// deep stack produces.
void CheckGradientRel(Tensor param,
                      const std::function<double()>& forward_value,
                      const std::function<std::vector<double>()>& autograd,
                      double eps = 1e-5, double rel_tol = 1e-4) {
  std::vector<double> analytic = autograd();
  auto& data = param.data();
  for (size_t i = 0; i < data.size(); ++i) {
    double saved = data[i];
    data[i] = saved + eps;
    double up = forward_value();
    data[i] = saved - eps;
    double down = forward_value();
    data[i] = saved;
    double numeric = (up - down) / (2 * eps);
    double denom =
        std::max({std::abs(analytic[i]), std::abs(numeric), 1e-4});
    EXPECT_LE(std::abs(analytic[i] - numeric) / denom, rel_tol)
        << "param element " << i << " analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.size(), 6);
  EXPECT_EQ(z.ndim(), 2);
  EXPECT_FALSE(z.requires_grad());
  Tensor f = Tensor::Full({2}, 7.0);
  EXPECT_EQ(f.data()[0], 7.0);
  Tensor d = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.data()[3], 4.0);
  EXPECT_EQ(Tensor::Full({1}, 5.0).item(), 5.0);
}

TEST(TensorTest, XavierWithinBounds) {
  Rng rng(1);
  Tensor w = Tensor::Xavier({64, 64}, &rng);
  double limit = std::sqrt(6.0 / 128.0);
  for (double v : w.data()) {
    EXPECT_LE(std::abs(v), limit + 1e-12);
  }
  EXPECT_TRUE(w.requires_grad());
}

TEST(TensorTest, MatMulForward) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c = Tensor::MatMul(a, b);
  EXPECT_EQ(c.data(), (std::vector<double>{19, 22, 43, 50}));
}

TEST(TensorGradTest, MatMul) {
  Rng rng(2);
  Tensor a = Tensor::Xavier({3, 4}, &rng);
  Tensor b = Tensor::Xavier({4, 2}, &rng);
  Tensor target = Tensor::Zeros({3, 2});
  auto loss_value = [&] {
    return Tensor::MaeLoss(Tensor::MatMul(a, b), target).item();
  };
  auto autograd = [&] {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor::MaeLoss(Tensor::MatMul(a, b), target).Backward();
    return a.grad();
  };
  CheckGradient(a, loss_value, autograd);
}

TEST(TensorGradTest, AddBiasAndActivations) {
  Rng rng(3);
  Tensor x = Tensor::Xavier({4, 3}, &rng);
  Tensor bias = Tensor::Xavier({3}, &rng);
  Tensor target = Tensor::Full({4, 3}, 0.3);
  auto make_loss = [&] {
    Tensor h = Tensor::AddBias(x, bias);
    Tensor t = Tensor::Tanh(h);
    Tensor s = Tensor::Sigmoid(h);
    Tensor r = Tensor::Relu(Tensor::Add(t, s));
    return Tensor::MaeLoss(Tensor::Mul(r, Tensor::Scale(h, 0.5)), target);
  };
  auto autograd = [&] {
    x.ZeroGrad();
    bias.ZeroGrad();
    make_loss().Backward();
    return bias.grad();
  };
  CheckGradient(bias, [&] { return make_loss().item(); }, autograd);
}

TEST(TensorGradTest, Conv1dTimeWithDilation) {
  Rng rng(4);
  Tensor x = Tensor::Xavier({6, 2, 3}, &rng);  // [T,N,Fi]
  Tensor w = Tensor::Xavier({2, 3, 2}, &rng);  // [K,Fi,Fo]
  Tensor target = Tensor::Zeros({6, 2, 2});
  auto make_loss = [&] {
    return Tensor::MaeLoss(Tensor::Conv1dTime(x, w, /*dilation=*/2), target);
  };
  auto autograd_w = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return w.grad();
  };
  CheckGradient(w, [&] { return make_loss().item(); }, autograd_w);
  auto autograd_x = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return x.grad();
  };
  CheckGradient(x, [&] { return make_loss().item(); }, autograd_x);
}

TEST(TensorGradTest, NodeMix) {
  Rng rng(5);
  Tensor x = Tensor::Xavier({3, 4, 2}, &rng);  // [T,N,Fi]
  Tensor adj = Tensor::FromData(
      {4, 4}, {0.5, 0.5, 0, 0, 0.3, 0.4, 0.3, 0, 0, 0.2, 0.8, 0, 0, 0, 0, 1});
  Tensor w = Tensor::Xavier({2, 3}, &rng);  // [Fi,Fo]
  Tensor target = Tensor::Zeros({3, 4, 3});
  auto make_loss = [&] {
    return Tensor::MaeLoss(Tensor::NodeMix(x, adj, w), target);
  };
  auto autograd_w = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return w.grad();
  };
  CheckGradient(w, [&] { return make_loss().item(); }, autograd_w);
  auto autograd_x = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return x.grad();
  };
  CheckGradient(x, [&] { return make_loss().item(); }, autograd_x);
}

TEST(TensorGradTest, LinearAndSelectTime) {
  Rng rng(6);
  Tensor x = Tensor::Xavier({4, 3, 2}, &rng);
  Tensor w = Tensor::Xavier({2, 5}, &rng);
  Tensor target = Tensor::Zeros({3, 5});
  auto make_loss = [&] {
    Tensor y = Tensor::Linear(x, w);     // [4,3,5]
    Tensor last = Tensor::SelectTime(y, 3);  // [3,5]
    return Tensor::MaeLoss(last, target);
  };
  auto autograd = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return x.grad();
  };
  CheckGradient(x, [&] { return make_loss().item(); }, autograd);
}

TEST(TensorGradTest, SquaredNorm) {
  Tensor a = Tensor::FromData({3}, {1, -2, 3}, /*requires_grad=*/true);
  Tensor loss = Tensor::SquaredNorm(a);
  EXPECT_DOUBLE_EQ(loss.item(), 14.0);
  loss.Backward();
  EXPECT_EQ(a.grad(), (std::vector<double>{2, -4, 6}));
}

TEST(TensorTest, DropoutTrainVsEval) {
  Rng rng(7);
  Tensor x = Tensor::Full({100, 10}, 1.0, /*requires_grad=*/true);
  Tensor eval = Tensor::Dropout(x, 0.5, &rng, /*training=*/false);
  EXPECT_EQ(eval.data(), x.data());  // identity in eval mode
  Tensor train = Tensor::Dropout(x, 0.5, &rng, /*training=*/true);
  int zeros = 0, scaled = 0;
  for (double v : train.data()) {
    if (v == 0.0) ++zeros;
    if (std::abs(v - 2.0) < 1e-12) ++scaled;
  }
  EXPECT_EQ(zeros + scaled, 1000);
  EXPECT_GT(zeros, 300);  // roughly half dropped
  EXPECT_GT(scaled, 300);
}

TEST(TensorTest, DiamondGraphAccumulatesGradOnce) {
  // y = a*a used twice downstream: gradients must accumulate exactly once
  // per path (topological traversal must not double-run backward fns).
  Tensor a = Tensor::FromData({1}, {3.0}, /*requires_grad=*/true);
  Tensor sq = Tensor::Mul(a, a);
  Tensor sum = Tensor::Add(sq, sq);  // d/da = 2 * 2a = 12
  sum.Backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 12.0);
}

// Parameterized gradient sweep: a small MLP-like composite over varying
// shapes and seeds, checked numerically end to end.
class CompositeGradSweep
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(CompositeGradSweep, CompositeGraphMatchesNumericGradient) {
  auto [rows, features, seed] = GetParam();
  Rng rng(seed);
  Tensor x = Tensor::Xavier({rows, features}, &rng);
  Tensor w1 = Tensor::Xavier({features, features}, &rng);
  Tensor bias = Tensor::Xavier({features}, &rng);
  Tensor w2 = Tensor::Xavier({features, 2}, &rng);
  Tensor target = Tensor::Full({rows, 2}, 0.25);
  auto make_loss = [&] {
    Tensor h = Tensor::Tanh(Tensor::AddBias(Tensor::MatMul(x, w1), bias));
    Tensor g = Tensor::Mul(h, Tensor::Sigmoid(h));
    Tensor out = Tensor::MatMul(g, w2);
    return Tensor::Add(Tensor::MaeLoss(out, target),
                       Tensor::Scale(Tensor::SquaredNorm(w2), 1e-3));
  };
  auto autograd = [&](Tensor param) {
    return [&, param]() mutable {
      x.ZeroGrad();
      w1.ZeroGrad();
      bias.ZeroGrad();
      w2.ZeroGrad();
      make_loss().Backward();
      return param.grad();
    };
  };
  CheckGradient(w1, [&] { return make_loss().item(); }, autograd(w1));
  CheckGradient(bias, [&] { return make_loss().item(); }, autograd(bias));
  CheckGradient(w2, [&] { return make_loss().item(); }, autograd(w2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompositeGradSweep,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(2, 5),
                       ::testing::Values(21u, 22u)));

TEST(TensorTest, GraphsAreFreedWhenRootsDie) {
  // Regression test for the backward-closure reference cycle: after the
  // graph's root goes out of scope, only the parameters survive.
  Rng rng(11);
  Tensor w = Tensor::Xavier({8, 8}, &rng);
  int64_t baseline = Tensor::LiveNodeCount();
  for (int i = 0; i < 20; ++i) {
    Tensor x = Tensor::FromData({4, 8}, std::vector<double>(32, 1.0));
    Tensor h = Tensor::Sigmoid(Tensor::Tanh(Tensor::MatMul(x, w)));
    Tensor loss = Tensor::MaeLoss(h, Tensor::Zeros({4, 8}));
    loss.Backward();
    w.ZeroGrad();
  }
  EXPECT_EQ(Tensor::LiveNodeCount(), baseline);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize |x - 5| elementwise via MAE against a constant target.
  Tensor x = Tensor::FromData({4}, {0, 1, -2, 10}, /*requires_grad=*/true);
  Tensor target = Tensor::Full({4}, 5.0);
  AdamOptimizer::Options options;
  options.lr = 0.2;
  options.weight_decay = 0;
  AdamOptimizer opt({x}, options);
  for (int i = 0; i < 300; ++i) {
    Tensor loss = Tensor::MaeLoss(x, target);
    loss.Backward();
    opt.Step();
  }
  for (double v : x.data()) EXPECT_NEAR(v, 5.0, 0.4);
}

TEST(AdamTest, LrDecaySchedule) {
  Tensor x = Tensor::FromData({1}, {1.0}, /*requires_grad=*/true);
  AdamOptimizer::Options options;
  options.lr = 1e-3;
  options.lr_decay = 0.1;
  options.lr_decay_every = 20;
  AdamOptimizer opt({x}, options);
  EXPECT_DOUBLE_EQ(opt.current_lr(), 1e-3);
  for (int i = 0; i < 20; ++i) {
    x.grad()[0] = 1.0;
    opt.Step();
  }
  EXPECT_NEAR(opt.current_lr(), 1e-4, 1e-12);
  for (int i = 0; i < 20; ++i) {
    x.grad()[0] = 1.0;
    opt.Step();
  }
  EXPECT_NEAR(opt.current_lr(), 1e-5, 1e-13);
}

// ---------------------------------------------------------------------------
// DTGM layer gradient checks (paper Section IV-A): finite differences vs
// reverse-mode for the gated TCN, the GCN pooling, and the full stacked
// forward, at seeded random points.
// ---------------------------------------------------------------------------

// Row-stochastic adjacency (self loops + random symmetric edges), plus its
// square — the C^1, C^2 powers DTGM feeds to NodeMix.
std::pair<Tensor, Tensor> RandomAdjacencyPowers(int n, Rng* rng) {
  std::vector<double> adj(static_cast<size_t>(n * n), 0.0);
  for (int a = 0; a < n; ++a) {
    adj[static_cast<size_t>(a * n + a)] = 1.0;
    for (int b = a + 1; b < n; ++b) {
      if (rng->Bernoulli(0.6)) {
        double w = rng->UniformDouble();
        adj[static_cast<size_t>(a * n + b)] = w;
        adj[static_cast<size_t>(b * n + a)] = w;
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    double sum = 0;
    for (int b = 0; b < n; ++b) sum += adj[static_cast<size_t>(a * n + b)];
    for (int b = 0; b < n; ++b) adj[static_cast<size_t>(a * n + b)] /= sum;
  }
  std::vector<double> sq(static_cast<size_t>(n * n), 0.0);
  for (int a = 0; a < n; ++a) {
    for (int c = 0; c < n; ++c) {
      for (int b = 0; b < n; ++b) {
        sq[static_cast<size_t>(a * n + b)] +=
            adj[static_cast<size_t>(a * n + c)] *
            adj[static_cast<size_t>(c * n + b)];
      }
    }
  }
  return {Tensor::FromData({n, n}, std::move(adj)),
          Tensor::FromData({n, n}, std::move(sq))};
}

TEST(DtgmLayerGradTest, GatedTcn) {
  // tanh(conv_f * H) ⊙ sigmoid(conv_g * H) with dropout active: the mask is
  // replayed identically on every forward (fresh Rng per call), so finite
  // differences see the same subnetwork the backward pass differentiated.
  Rng rng(test::DeriveSeed(0x7C1));
  const int kT = 5, kN = 3, kF = 4, kK = 2;
  Tensor x = Tensor::Xavier({kT, kN, kF}, &rng);
  Tensor conv_filter = Tensor::Xavier({kK, kF, kF}, &rng);
  Tensor conv_gate = Tensor::Xavier({kK, kF, kF}, &rng);
  Tensor target = Tensor::Full({kT, kN, kF}, 0.1);
  const uint64_t mask_seed = test::DeriveSeed(0x7C2);
  auto make_loss = [&] {
    Tensor filt = Tensor::Tanh(Tensor::Conv1dTime(x, conv_filter, 2));
    Tensor gate = Tensor::Sigmoid(Tensor::Conv1dTime(x, conv_gate, 2));
    Tensor zt = Tensor::Mul(filt, gate);
    Rng mask_rng(mask_seed);
    zt = Tensor::Dropout(zt, 0.3, &mask_rng, /*training=*/true);
    return Tensor::MaeLoss(zt, target);
  };
  auto autograd = [&](Tensor param) {
    return [&, param]() mutable {
      x.ZeroGrad();
      conv_filter.ZeroGrad();
      conv_gate.ZeroGrad();
      make_loss().Backward();
      return param.grad();
    };
  };
  auto value = [&] { return make_loss().item(); };
  CheckGradientRel(conv_filter, value, autograd(conv_filter));
  CheckGradientRel(conv_gate, value, autograd(conv_gate));
  CheckGradientRel(x, value, autograd(x));
}

TEST(DtgmLayerGradTest, GcnPooling) {
  // Z = Zt W_0 + sum_k C^k Zt W_k over two adjacency powers.
  Rng rng(test::DeriveSeed(0x6C2));
  const int kT = 4, kN = 3, kF = 3;
  Tensor zt = Tensor::Xavier({kT, kN, kF}, &rng);
  auto [c1, c2] = RandomAdjacencyPowers(kN, &rng);
  Tensor w0 = Tensor::Xavier({kF, kF}, &rng);
  Tensor w1 = Tensor::Xavier({kF, kF}, &rng);
  Tensor w2 = Tensor::Xavier({kF, kF}, &rng);
  Tensor target = Tensor::Full({kT, kN, kF}, 0.2);
  auto make_loss = [&] {
    Tensor zg = Tensor::Linear(zt, w0);
    zg = Tensor::Add(zg, Tensor::NodeMix(zt, c1, w1));
    zg = Tensor::Add(zg, Tensor::NodeMix(zt, c2, w2));
    return Tensor::MaeLoss(Tensor::Relu(zg), target);
  };
  auto autograd = [&](Tensor param) {
    return [&, param]() mutable {
      zt.ZeroGrad();
      w0.ZeroGrad();
      w1.ZeroGrad();
      w2.ZeroGrad();
      make_loss().Backward();
      return param.grad();
    };
  };
  auto value = [&] { return make_loss().item(); };
  CheckGradientRel(w0, value, autograd(w0));
  CheckGradientRel(w1, value, autograd(w1));
  CheckGradientRel(w2, value, autograd(w2));
  CheckGradientRel(zt, value, autograd(zt));
}

// Miniature DTGM with the exact Forward structure of DtgmPredictor: input
// projection, two gated-TCN + GCN blocks with residual and skip connections,
// ReLU readout. Shared by the end-to-end gradient check and the leak test.
struct MiniDtgm {
  static constexpr int kT = 6, kN = 3, kF = 3, kK = 2, kH = 4;
  Tensor input_proj, out_w1, out_w2;
  struct Layer {
    Tensor conv_filter, conv_gate, skip_w;
    std::vector<Tensor> gcn_w;
  };
  std::vector<Layer> layers;
  Tensor c1, c2;

  explicit MiniDtgm(Rng* rng) {
    input_proj = Tensor::Xavier({1, kF}, rng);
    for (int l = 0; l < 2; ++l) {
      Layer layer;
      layer.conv_filter = Tensor::Xavier({kK, kF, kF}, rng);
      layer.conv_gate = Tensor::Xavier({kK, kF, kF}, rng);
      layer.skip_w = Tensor::Xavier({kF, kF}, rng);
      for (int k = 0; k < 3; ++k) {
        layer.gcn_w.push_back(Tensor::Xavier({kF, kF}, rng));
      }
      layers.push_back(std::move(layer));
    }
    out_w1 = Tensor::Xavier({kF, kF}, rng);
    out_w2 = Tensor::Xavier({kF, kH}, rng);
    auto powers = RandomAdjacencyPowers(kN, rng);
    c1 = powers.first;
    c2 = powers.second;
  }

  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> params = {input_proj, out_w1, out_w2};
    for (const auto& layer : layers) {
      params.push_back(layer.conv_filter);
      params.push_back(layer.conv_gate);
      params.push_back(layer.skip_w);
      for (const auto& w : layer.gcn_w) params.push_back(w);
    }
    return params;
  }

  void ZeroGrads() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

  Tensor Forward(const Tensor& input, bool training, Rng* dropout_rng) const {
    Tensor h = Tensor::Linear(input, input_proj);
    Tensor skip;
    for (int l = 0; l < static_cast<int>(layers.size()); ++l) {
      const Layer& layer = layers[static_cast<size_t>(l)];
      int dilation = 1 << l;
      Tensor filt =
          Tensor::Tanh(Tensor::Conv1dTime(h, layer.conv_filter, dilation));
      Tensor gate =
          Tensor::Sigmoid(Tensor::Conv1dTime(h, layer.conv_gate, dilation));
      Tensor zt = Tensor::Mul(filt, gate);
      zt = Tensor::Dropout(zt, 0.3, dropout_rng, training);
      Tensor s = Tensor::Linear(zt, layer.skip_w);
      skip = skip.defined() ? Tensor::Add(skip, s) : s;
      Tensor zg = Tensor::Linear(zt, layer.gcn_w[0]);
      zg = Tensor::Add(zg, Tensor::NodeMix(zt, c1, layer.gcn_w[1]));
      zg = Tensor::Add(zg, Tensor::NodeMix(zt, c2, layer.gcn_w[2]));
      h = Tensor::Add(zg, h);
    }
    Tensor last = Tensor::SelectTime(Tensor::Relu(skip), skip.dim(0) - 1);
    Tensor hidden = Tensor::Relu(Tensor::Linear(last, out_w1));
    return Tensor::Linear(hidden, out_w2);  // [N, horizon]
  }
};

TEST(DtgmLayerGradTest, StackedForwardEndToEnd) {
  Rng rng(test::DeriveSeed(0xD763));
  MiniDtgm model(&rng);
  Tensor input = Tensor::Xavier({MiniDtgm::kT, MiniDtgm::kN, 1}, &rng);
  Tensor target = Tensor::Full({MiniDtgm::kN, MiniDtgm::kH}, 0.3);
  auto make_loss = [&] {
    Rng eval_rng(0);  // training=false: dropout is the identity
    Tensor pred = model.Forward(input, /*training=*/false, &eval_rng);
    return Tensor::MaeLoss(pred, target);
  };
  auto autograd = [&](Tensor param) {
    return [&, param]() mutable {
      model.ZeroGrads();
      input.ZeroGrad();
      make_loss().Backward();
      return param.grad();
    };
  };
  auto value = [&] { return make_loss().item(); };
  for (Tensor param : model.Parameters()) {
    CheckGradientRel(param, value, autograd(param));
  }
  CheckGradientRel(input, value, autograd(input));
}

TEST(DtgmLayerGradTest, NoLiveNodeLeakAfterTrainingSteps) {
  // Adam training steps over the full stacked graph (dropout active) must
  // free every intermediate node: only the parameters may survive.
  Rng rng(test::DeriveSeed(0x1EA4));
  MiniDtgm model(&rng);
  AdamOptimizer::Options options;
  options.lr = 1e-3;
  AdamOptimizer opt(model.Parameters(), options);
  Rng dropout_rng(test::DeriveSeed(0xD0));
  int64_t baseline = Tensor::LiveNodeCount();
  for (int step = 0; step < 5; ++step) {
    Tensor input =
        Tensor::FromData({MiniDtgm::kT, MiniDtgm::kN, 1},
                         std::vector<double>(MiniDtgm::kT * MiniDtgm::kN, 0.5));
    Tensor pred = model.Forward(input, /*training=*/true, &dropout_rng);
    Tensor loss = Tensor::MaeLoss(
        pred, Tensor::Zeros({MiniDtgm::kN, MiniDtgm::kH}));
    loss.Backward();
    opt.Step();
  }
  EXPECT_EQ(Tensor::LiveNodeCount(), baseline);
}

}  // namespace
}  // namespace aets
