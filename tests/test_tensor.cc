// Autograd engine tests: numeric gradient checks for every op, optimizer
// behavior, and graph mechanics.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "aets/common/rng.h"
#include "aets/predictor/tensor.h"

namespace aets {
namespace {

// Numeric gradient check: perturb each element of `param`, re-run
// `forward` (which must rebuild the graph and return the scalar loss), and
// compare against the autograd gradient captured by `grad_of`.
void CheckGradient(Tensor param,
                   const std::function<double()>& forward_value,
                   const std::function<std::vector<double>()>& autograd,
                   double eps = 1e-5, double tol = 1e-4) {
  std::vector<double> analytic = autograd();
  auto& data = param.data();
  for (size_t i = 0; i < data.size(); ++i) {
    double saved = data[i];
    data[i] = saved + eps;
    double up = forward_value();
    data[i] = saved - eps;
    double down = forward_value();
    data[i] = saved;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol)
        << "param element " << i << " analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.size(), 6);
  EXPECT_EQ(z.ndim(), 2);
  EXPECT_FALSE(z.requires_grad());
  Tensor f = Tensor::Full({2}, 7.0);
  EXPECT_EQ(f.data()[0], 7.0);
  Tensor d = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.data()[3], 4.0);
  EXPECT_EQ(Tensor::Full({1}, 5.0).item(), 5.0);
}

TEST(TensorTest, XavierWithinBounds) {
  Rng rng(1);
  Tensor w = Tensor::Xavier({64, 64}, &rng);
  double limit = std::sqrt(6.0 / 128.0);
  for (double v : w.data()) {
    EXPECT_LE(std::abs(v), limit + 1e-12);
  }
  EXPECT_TRUE(w.requires_grad());
}

TEST(TensorTest, MatMulForward) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c = Tensor::MatMul(a, b);
  EXPECT_EQ(c.data(), (std::vector<double>{19, 22, 43, 50}));
}

TEST(TensorGradTest, MatMul) {
  Rng rng(2);
  Tensor a = Tensor::Xavier({3, 4}, &rng);
  Tensor b = Tensor::Xavier({4, 2}, &rng);
  Tensor target = Tensor::Zeros({3, 2});
  auto loss_value = [&] {
    return Tensor::MaeLoss(Tensor::MatMul(a, b), target).item();
  };
  auto autograd = [&] {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor::MaeLoss(Tensor::MatMul(a, b), target).Backward();
    return a.grad();
  };
  CheckGradient(a, loss_value, autograd);
}

TEST(TensorGradTest, AddBiasAndActivations) {
  Rng rng(3);
  Tensor x = Tensor::Xavier({4, 3}, &rng);
  Tensor bias = Tensor::Xavier({3}, &rng);
  Tensor target = Tensor::Full({4, 3}, 0.3);
  auto make_loss = [&] {
    Tensor h = Tensor::AddBias(x, bias);
    Tensor t = Tensor::Tanh(h);
    Tensor s = Tensor::Sigmoid(h);
    Tensor r = Tensor::Relu(Tensor::Add(t, s));
    return Tensor::MaeLoss(Tensor::Mul(r, Tensor::Scale(h, 0.5)), target);
  };
  auto autograd = [&] {
    x.ZeroGrad();
    bias.ZeroGrad();
    make_loss().Backward();
    return bias.grad();
  };
  CheckGradient(bias, [&] { return make_loss().item(); }, autograd);
}

TEST(TensorGradTest, Conv1dTimeWithDilation) {
  Rng rng(4);
  Tensor x = Tensor::Xavier({6, 2, 3}, &rng);  // [T,N,Fi]
  Tensor w = Tensor::Xavier({2, 3, 2}, &rng);  // [K,Fi,Fo]
  Tensor target = Tensor::Zeros({6, 2, 2});
  auto make_loss = [&] {
    return Tensor::MaeLoss(Tensor::Conv1dTime(x, w, /*dilation=*/2), target);
  };
  auto autograd_w = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return w.grad();
  };
  CheckGradient(w, [&] { return make_loss().item(); }, autograd_w);
  auto autograd_x = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return x.grad();
  };
  CheckGradient(x, [&] { return make_loss().item(); }, autograd_x);
}

TEST(TensorGradTest, NodeMix) {
  Rng rng(5);
  Tensor x = Tensor::Xavier({3, 4, 2}, &rng);  // [T,N,Fi]
  Tensor adj = Tensor::FromData(
      {4, 4}, {0.5, 0.5, 0, 0, 0.3, 0.4, 0.3, 0, 0, 0.2, 0.8, 0, 0, 0, 0, 1});
  Tensor w = Tensor::Xavier({2, 3}, &rng);  // [Fi,Fo]
  Tensor target = Tensor::Zeros({3, 4, 3});
  auto make_loss = [&] {
    return Tensor::MaeLoss(Tensor::NodeMix(x, adj, w), target);
  };
  auto autograd_w = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return w.grad();
  };
  CheckGradient(w, [&] { return make_loss().item(); }, autograd_w);
  auto autograd_x = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return x.grad();
  };
  CheckGradient(x, [&] { return make_loss().item(); }, autograd_x);
}

TEST(TensorGradTest, LinearAndSelectTime) {
  Rng rng(6);
  Tensor x = Tensor::Xavier({4, 3, 2}, &rng);
  Tensor w = Tensor::Xavier({2, 5}, &rng);
  Tensor target = Tensor::Zeros({3, 5});
  auto make_loss = [&] {
    Tensor y = Tensor::Linear(x, w);     // [4,3,5]
    Tensor last = Tensor::SelectTime(y, 3);  // [3,5]
    return Tensor::MaeLoss(last, target);
  };
  auto autograd = [&] {
    x.ZeroGrad();
    w.ZeroGrad();
    make_loss().Backward();
    return x.grad();
  };
  CheckGradient(x, [&] { return make_loss().item(); }, autograd);
}

TEST(TensorGradTest, SquaredNorm) {
  Tensor a = Tensor::FromData({3}, {1, -2, 3}, /*requires_grad=*/true);
  Tensor loss = Tensor::SquaredNorm(a);
  EXPECT_DOUBLE_EQ(loss.item(), 14.0);
  loss.Backward();
  EXPECT_EQ(a.grad(), (std::vector<double>{2, -4, 6}));
}

TEST(TensorTest, DropoutTrainVsEval) {
  Rng rng(7);
  Tensor x = Tensor::Full({100, 10}, 1.0, /*requires_grad=*/true);
  Tensor eval = Tensor::Dropout(x, 0.5, &rng, /*training=*/false);
  EXPECT_EQ(eval.data(), x.data());  // identity in eval mode
  Tensor train = Tensor::Dropout(x, 0.5, &rng, /*training=*/true);
  int zeros = 0, scaled = 0;
  for (double v : train.data()) {
    if (v == 0.0) ++zeros;
    if (std::abs(v - 2.0) < 1e-12) ++scaled;
  }
  EXPECT_EQ(zeros + scaled, 1000);
  EXPECT_GT(zeros, 300);  // roughly half dropped
  EXPECT_GT(scaled, 300);
}

TEST(TensorTest, DiamondGraphAccumulatesGradOnce) {
  // y = a*a used twice downstream: gradients must accumulate exactly once
  // per path (topological traversal must not double-run backward fns).
  Tensor a = Tensor::FromData({1}, {3.0}, /*requires_grad=*/true);
  Tensor sq = Tensor::Mul(a, a);
  Tensor sum = Tensor::Add(sq, sq);  // d/da = 2 * 2a = 12
  sum.Backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 12.0);
}

// Parameterized gradient sweep: a small MLP-like composite over varying
// shapes and seeds, checked numerically end to end.
class CompositeGradSweep
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(CompositeGradSweep, CompositeGraphMatchesNumericGradient) {
  auto [rows, features, seed] = GetParam();
  Rng rng(seed);
  Tensor x = Tensor::Xavier({rows, features}, &rng);
  Tensor w1 = Tensor::Xavier({features, features}, &rng);
  Tensor bias = Tensor::Xavier({features}, &rng);
  Tensor w2 = Tensor::Xavier({features, 2}, &rng);
  Tensor target = Tensor::Full({rows, 2}, 0.25);
  auto make_loss = [&] {
    Tensor h = Tensor::Tanh(Tensor::AddBias(Tensor::MatMul(x, w1), bias));
    Tensor g = Tensor::Mul(h, Tensor::Sigmoid(h));
    Tensor out = Tensor::MatMul(g, w2);
    return Tensor::Add(Tensor::MaeLoss(out, target),
                       Tensor::Scale(Tensor::SquaredNorm(w2), 1e-3));
  };
  auto autograd = [&](Tensor param) {
    return [&, param]() mutable {
      x.ZeroGrad();
      w1.ZeroGrad();
      bias.ZeroGrad();
      w2.ZeroGrad();
      make_loss().Backward();
      return param.grad();
    };
  };
  CheckGradient(w1, [&] { return make_loss().item(); }, autograd(w1));
  CheckGradient(bias, [&] { return make_loss().item(); }, autograd(bias));
  CheckGradient(w2, [&] { return make_loss().item(); }, autograd(w2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompositeGradSweep,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(2, 5),
                       ::testing::Values(21u, 22u)));

TEST(TensorTest, GraphsAreFreedWhenRootsDie) {
  // Regression test for the backward-closure reference cycle: after the
  // graph's root goes out of scope, only the parameters survive.
  Rng rng(11);
  Tensor w = Tensor::Xavier({8, 8}, &rng);
  int64_t baseline = Tensor::LiveNodeCount();
  for (int i = 0; i < 20; ++i) {
    Tensor x = Tensor::FromData({4, 8}, std::vector<double>(32, 1.0));
    Tensor h = Tensor::Sigmoid(Tensor::Tanh(Tensor::MatMul(x, w)));
    Tensor loss = Tensor::MaeLoss(h, Tensor::Zeros({4, 8}));
    loss.Backward();
    w.ZeroGrad();
  }
  EXPECT_EQ(Tensor::LiveNodeCount(), baseline);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize |x - 5| elementwise via MAE against a constant target.
  Tensor x = Tensor::FromData({4}, {0, 1, -2, 10}, /*requires_grad=*/true);
  Tensor target = Tensor::Full({4}, 5.0);
  AdamOptimizer::Options options;
  options.lr = 0.2;
  options.weight_decay = 0;
  AdamOptimizer opt({x}, options);
  for (int i = 0; i < 300; ++i) {
    Tensor loss = Tensor::MaeLoss(x, target);
    loss.Backward();
    opt.Step();
  }
  for (double v : x.data()) EXPECT_NEAR(v, 5.0, 0.4);
}

TEST(AdamTest, LrDecaySchedule) {
  Tensor x = Tensor::FromData({1}, {1.0}, /*requires_grad=*/true);
  AdamOptimizer::Options options;
  options.lr = 1e-3;
  options.lr_decay = 0.1;
  options.lr_decay_every = 20;
  AdamOptimizer opt({x}, options);
  EXPECT_DOUBLE_EQ(opt.current_lr(), 1e-3);
  for (int i = 0; i < 20; ++i) {
    x.grad()[0] = 1.0;
    opt.Step();
  }
  EXPECT_NEAR(opt.current_lr(), 1e-4, 1e-12);
  for (int i = 0; i < 20; ++i) {
    x.grad()[0] = 1.0;
    opt.Step();
  }
  EXPECT_NEAR(opt.current_lr(), 1e-5, 1e-13);
}

}  // namespace
}  // namespace aets
