// Checkpoint/restore tests: image round-trips, corruption detection, and
// resuming replay from a checkpoint mid-stream.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "aets/common/rng.h"
#include "aets/log/codec.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/durable_source.h"
#include "aets/replication/log_shipper.h"
#include "aets/storage/checkpoint.h"

namespace aets {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  return catalog;
}

void FillRandom(PrimaryDb* db, int num_tables, int num_txns, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < num_txns; ++i) {
    PrimaryTxn txn = db->Begin();
    int writes = static_cast<int>(rng.UniformInt(1, 4));
    for (int w = 0; w < writes; ++w) {
      TableId table = static_cast<TableId>(rng.UniformInt(0, num_tables - 1));
      if (rng.Bernoulli(0.1)) {
        txn.Delete(table, rng.UniformInt(0, 60));
      } else {
        txn.Insert(table, rng.UniformInt(0, 60),
                   {{0, Value(static_cast<int64_t>(i))},
                    {1, Value(rng.AlphaString(3, 10))}});
      }
    }
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
}

TEST(CheckpointTest, RoundTripPreservesSnapshot) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(3));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 3, 400, 1);
  Timestamp ts = db.last_commit_ts();

  std::string path = TempPath("ckpt_roundtrip");
  ASSERT_TRUE(Checkpointer::Write(db.store(), ts, /*next_epoch=*/7, path).ok());

  TableStore restored(*catalog);
  auto info = Checkpointer::Restore(path, &restored);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->snapshot_ts, ts);
  EXPECT_EQ(info->next_epoch_id, 7u);
  EXPECT_EQ(info->num_rows, db.store().VisibleRowCount(ts));
  EXPECT_EQ(restored.DigestAt(ts), db.store().DigestAt(ts));
  // Any later snapshot reads the same image (no post-snapshot versions).
  EXPECT_EQ(restored.DigestAt(ts + 100), db.store().DigestAt(ts));
}

TEST(CheckpointTest, SnapshotIsolation) {
  // The image reflects the requested snapshot, not later writes.
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  PrimaryTxn txn1 = db.Begin();
  txn1.Insert(0, 1, {{0, Value(int64_t{1})}});
  Timestamp early = db.Commit(std::move(txn1))->commit_ts;
  PrimaryTxn txn2 = db.Begin();
  txn2.Insert(0, 2, {{0, Value(int64_t{2})}});
  ASSERT_TRUE(db.Commit(std::move(txn2)).ok());

  std::string path = TempPath("ckpt_snapshot");
  ASSERT_TRUE(Checkpointer::Write(db.store(), early, 0, path).ok());
  TableStore restored(*catalog);
  ASSERT_TRUE(Checkpointer::Restore(path, &restored).ok());
  EXPECT_EQ(restored.GetTable(0)->VisibleRowCount(early + 10), 1u);
}

TEST(CheckpointTest, DetectsCorruptionAndTruncation) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 2, 100, 2);
  std::string path = TempPath("ckpt_corrupt");
  ASSERT_TRUE(
      Checkpointer::Write(db.store(), db.last_commit_ts(), 1, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  {  // bad magic
    std::string bad = bytes;
    bad[0] = 'X';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bad;
    out.close();
    TableStore store(*catalog);
    EXPECT_TRUE(Checkpointer::Restore(path, &store).status().IsCorruption());
  }
  {  // flipped byte in a row record
    std::string bad = bytes;
    bad[bad.size() / 2] ^= 0x20;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bad;
    out.close();
    TableStore store(*catalog);
    EXPECT_FALSE(Checkpointer::Restore(path, &store).ok());
  }
  {  // truncated body
    std::string bad = bytes.substr(0, bytes.size() - 13);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bad;
    out.close();
    TableStore store(*catalog);
    EXPECT_FALSE(Checkpointer::Restore(path, &store).ok());
  }
  {  // table count mismatch
    std::unique_ptr<Catalog> other(MakeCatalog(5));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    out.close();
    TableStore store(*other);
    EXPECT_TRUE(
        Checkpointer::Restore(path, &store).status().IsInvalidArgument());
  }
}

TEST(CheckpointTest, BodyCorruptionIsACorruptionStatus) {
  // v2's whole-body CRC: damage anywhere past the header must be reported
  // as Corruption (v1 restored silently when a frame still parsed).
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 1, 50, 6);
  std::string path = TempPath("ckpt_bodycrc");
  ASSERT_TRUE(
      Checkpointer::Write(db.store(), db.last_commit_ts(), 1, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() - 1] ^= 0x01;  // last body byte
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  TableStore store(*catalog);
  Status status = Checkpointer::Restore(path, &store).status();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.ToString().find("body"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, RestoresVersion1Images) {
  // Hand-build a v1 image (no body CRC): old checkpoints must keep
  // restoring through the per-record checksums alone.
  struct V1Header {
    char magic[8];
    uint32_t version;
    uint32_t crc;
    uint64_t snapshot_ts;
    uint64_t next_epoch_id;
    uint64_t num_rows;
    uint64_t num_tables;
  };
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  const Timestamp snapshot_ts = 5;

  std::string body;
  LogCodec::Encode(
      LogRecord::Dml(LogRecordType::kInsert, /*lsn=*/1, /*txn=*/1, snapshot_ts,
                     /*table=*/0, /*key=*/7,
                     {{0, Value(int64_t{42})}, {1, Value(std::string("x"))}}),
      &body);

  V1Header header{};
  std::memcpy(header.magic, "AETSCKPT", 8);
  header.version = 1;
  header.snapshot_ts = snapshot_ts;
  header.next_epoch_id = 3;
  header.num_rows = 1;
  header.num_tables = 1;
  header.crc = Crc32c(&header.snapshot_ts,
                      sizeof(V1Header) - offsetof(V1Header, snapshot_ts));

  std::string path = TempPath("ckpt_v1");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
  }

  TableStore store(*catalog);
  auto info = Checkpointer::Restore(path, &store);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->snapshot_ts, snapshot_ts);
  EXPECT_EQ(info->next_epoch_id, 3u);
  EXPECT_EQ(info->num_rows, 1u);
  EXPECT_EQ(store.GetTable(0)->VisibleRowCount(snapshot_ts), 1u);

  // A damaged v1 body is still rejected — via the record checksums, with an
  // unambiguous Corruption verdict.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[sizeof(V1Header) + body.size() / 2] ^= 0x08;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  TableStore store2(*catalog);
  Status status = Checkpointer::Restore(path, &store2).status();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, UnknownVersionIsNotSupported) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 1, 10, 7);
  std::string path = TempPath("ckpt_version");
  ASSERT_TRUE(
      Checkpointer::Write(db.store(), db.last_commit_ts(), 0, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[8] = 9;  // version field follows the 8-byte magic
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  TableStore store(*catalog);
  EXPECT_TRUE(Checkpointer::Restore(path, &store).status().IsNotSupported());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  TableStore store(*catalog);
  EXPECT_TRUE(Checkpointer::Restore(TempPath("no_such_ckpt"), &store)
                  .status()
                  .IsNotFound());
}

TEST(CheckpointTest, ReplayerResumeFromCheckpoint) {
  // Replay half the stream, checkpoint, bootstrap a fresh replayer from the
  // image, feed it only the remaining epochs: final state must match a
  // replayer that saw everything.
  constexpr int kTables = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16);
  EpochChannel recorder(0);
  shipper.AttachChannel(&recorder);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  FillRandom(&db, kTables, 600, 3);
  shipper.Finish();

  std::vector<ShippedEpoch> epochs;
  while (auto e = recorder.TryReceive()) epochs.push_back(std::move(*e));
  ASSERT_GT(epochs.size(), 4u);
  size_t half = epochs.size() / 2;

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;

  // Phase 1: replay the first half, checkpoint, discard the replayer.
  std::string path = TempPath("ckpt_resume");
  {
    EpochChannel channel(0);
    for (size_t i = 0; i < half; ++i) channel.Send(epochs[i]);
    channel.Close();
    AetsReplayer first(catalog.get(), &channel, options);
    ASSERT_TRUE(first.Start().ok());
    first.Stop();
    ASSERT_TRUE(first.error().ok());
    ASSERT_TRUE(first.WriteCheckpoint(path).ok());
    EXPECT_EQ(first.next_expected_epoch(), half);
  }

  // Phase 2: bootstrap a fresh replayer and feed the remainder.
  EpochChannel channel(0);
  for (size_t i = half; i < epochs.size(); ++i) channel.Send(epochs[i]);
  channel.Close();
  AetsReplayer resumed(catalog.get(), &channel, options);
  ASSERT_TRUE(resumed.Bootstrap(path).ok());
  ASSERT_TRUE(resumed.Start().ok());
  resumed.Stop();
  ASSERT_TRUE(resumed.error().ok()) << resumed.error().ToString();

  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(resumed.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_EQ(resumed.GlobalVisibleTs(), final_ts);
  std::remove(path.c_str());
}

TEST(CheckpointTest, WriteCommitsAtomicallyViaRename) {
  // The image appears under its final name only; no .tmp staging file may
  // survive a successful Write, and rewriting an existing image replaces it
  // whole (a reader never sees a half-written file at the committed path).
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 2, 200, 8);

  std::string dir = TempPath("ckpt_atomic_dir");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  std::string path = dir + "/image";
  Timestamp mid = db.last_commit_ts();
  ASSERT_TRUE(Checkpointer::Write(db.store(), mid, 1, path).ok());
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string(), "image")
        << "staging file left behind: " << entry.path();
  }

  // Overwrite with a later snapshot: the committed file must read back as
  // exactly the new image.
  FillRandom(&db, 2, 200, 9);
  Timestamp late = db.last_commit_ts();
  ASSERT_TRUE(Checkpointer::Write(db.store(), late, 2, path).ok());
  TableStore restored(*catalog);
  auto info = Checkpointer::Restore(path, &restored);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->snapshot_ts, late);
  EXPECT_EQ(info->next_epoch_id, 2u);
  EXPECT_EQ(restored.DigestAt(late), db.store().DigestAt(late));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, WriteToUnreachableDirectoryFailsCleanly) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 1, 10, 10);
  Status status = Checkpointer::Write(db.store(), db.last_commit_ts(), 0,
                                      TempPath("no_such_dir") + "/image");
  EXPECT_FALSE(status.ok());
}

TEST(CheckpointTest, CheckpointFileHelpersOrderNewestFirst) {
  // ListCheckpointFiles drives recovery's "newest image first" candidate
  // loop; the zero-padded hex names must sort by epoch, not string length.
  std::string dir = TempPath("ckpt_helpers_dir");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  for (EpochId id : {3u, 300u, 27u}) {
    std::ofstream out(CheckpointPathFor(dir, id));
    out << "stub";
  }
  std::ofstream(dir + "/seg-0000000000000000.log") << "not a checkpoint";

  auto files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], CheckpointPathFor(dir, 300));
  EXPECT_EQ(files[1], CheckpointPathFor(dir, 27));
  EXPECT_EQ(files[2], CheckpointPathFor(dir, 3));

  // Pruning keeps the newest images and tolerates keep > count.
  PruneCheckpoints(dir, 2);
  files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], CheckpointPathFor(dir, 300));
  EXPECT_EQ(files[1], CheckpointPathFor(dir, 27));
  PruneCheckpoints(dir, 10);
  EXPECT_EQ(ListCheckpointFiles(dir).size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, BootstrapRejectsUsedReplayer) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  FillRandom(&db, 1, 20, 4);
  std::string path = TempPath("ckpt_guard");
  ASSERT_TRUE(
      Checkpointer::Write(db.store(), db.last_commit_ts(), 0, path).ok());

  EpochChannel channel(0);
  channel.Send(MakeHeartbeatEpoch(0, 1));
  channel.Close();
  AetsOptions options;
  options.replay_threads = 1;
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();
  // Already processed epochs: bootstrap must refuse.
  EXPECT_TRUE(replayer.Bootstrap(path).IsInvalidArgument());
}

}  // namespace
}  // namespace aets
