// Workload tests: TPC-C semantics, CH-benCHmark footprints, BusTracker
// shapes and mixes, SEATS, and the Table I statistics they produce.

#include <gtest/gtest.h>

#include <set>

#include "aets/workload/bustracker.h"
#include "aets/workload/chbenchmark.h"
#include "aets/workload/driver.h"
#include "aets/workload/seats.h"
#include "aets/workload/tpcc.h"
#include "aets/workload/workload_stats.h"

namespace aets {
namespace {

TpccConfig SmallTpcc() {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 50;
  config.customers_per_district = 5;
  config.init_orders_per_district = 2;
  return config;
}

TEST(TpccTest, CatalogHasNineTables) {
  TpccWorkload tpcc(SmallTpcc());
  EXPECT_EQ(tpcc.catalog().num_tables(), 9u);
  EXPECT_EQ(*tpcc.catalog().GetTableId("order_line"), tpcc.orderline());
  EXPECT_EQ(*tpcc.catalog().GetTableId("stock"), tpcc.stock());
}

TEST(TpccTest, LoadPopulatesExpectedCardinalities) {
  TpccWorkload tpcc(SmallTpcc());
  LogicalClock clock;
  PrimaryDb db(&tpcc.catalog(), &clock);
  Rng rng(1);
  tpcc.Load(&db, &rng);
  Timestamp ts = db.last_commit_ts();
  const TableStore& store = db.store();
  EXPECT_EQ(store.GetTable(tpcc.warehouse())->VisibleRowCount(ts), 1u);
  EXPECT_EQ(store.GetTable(tpcc.district())->VisibleRowCount(ts), 10u);
  EXPECT_EQ(store.GetTable(tpcc.customer())->VisibleRowCount(ts), 50u);
  EXPECT_EQ(store.GetTable(tpcc.item())->VisibleRowCount(ts), 50u);
  EXPECT_EQ(store.GetTable(tpcc.stock())->VisibleRowCount(ts), 50u);
  EXPECT_EQ(store.GetTable(tpcc.orders())->VisibleRowCount(ts), 20u);
  EXPECT_EQ(store.GetTable(tpcc.neworder())->VisibleRowCount(ts), 20u);
}

TEST(TpccTest, NewOrderWritesExpectedTables) {
  TpccWorkload tpcc(SmallTpcc());
  LogicalClock clock;
  PrimaryDb db(&tpcc.catalog(), &clock);
  Rng rng(2);
  tpcc.Load(&db, &rng);
  auto before = db.log_buffer().DmlCountsByTable();
  ASSERT_TRUE(tpcc.RunNewOrder(&db, &rng).ok());
  auto after = db.log_buffer().DmlCountsByTable();
  EXPECT_EQ(after[tpcc.district()] - before[tpcc.district()], 1u);
  EXPECT_EQ(after[tpcc.orders()] - before[tpcc.orders()], 1u);
  EXPECT_EQ(after[tpcc.neworder()] - before[tpcc.neworder()], 1u);
  uint64_t lines = after[tpcc.orderline()] - before[tpcc.orderline()];
  EXPECT_GE(lines, 5u);
  EXPECT_LE(lines, 15u);
  EXPECT_EQ(after[tpcc.stock()] - before[tpcc.stock()], lines);
}

TEST(TpccTest, PaymentWritesExpectedTables) {
  TpccWorkload tpcc(SmallTpcc());
  LogicalClock clock;
  PrimaryDb db(&tpcc.catalog(), &clock);
  Rng rng(3);
  tpcc.Load(&db, &rng);
  auto before = db.log_buffer().DmlCountsByTable();
  ASSERT_TRUE(tpcc.RunPayment(&db, &rng).ok());
  auto after = db.log_buffer().DmlCountsByTable();
  EXPECT_EQ(after[tpcc.warehouse()] - before[tpcc.warehouse()], 1u);
  EXPECT_EQ(after[tpcc.district()] - before[tpcc.district()], 1u);
  EXPECT_EQ(after[tpcc.customer()] - before[tpcc.customer()], 1u);
  EXPECT_EQ(after[tpcc.history()] - before[tpcc.history()], 1u);
}

TEST(TpccTest, DeliveryConsumesBacklog) {
  TpccWorkload tpcc(SmallTpcc());
  LogicalClock clock;
  PrimaryDb db(&tpcc.catalog(), &clock);
  Rng rng(4);
  tpcc.Load(&db, &rng);
  auto before = db.log_buffer().DmlCountsByTable();
  ASSERT_TRUE(tpcc.RunDelivery(&db, &rng).ok());
  auto after = db.log_buffer().DmlCountsByTable();
  // One order delivered per district: 10 neworder deletes + 10 order
  // updates + per-order line updates + 10 customer updates.
  EXPECT_EQ(after[tpcc.neworder()] - before[tpcc.neworder()], 10u);
  EXPECT_EQ(after[tpcc.orders()] - before[tpcc.orders()], 10u);
  EXPECT_GE(after[tpcc.orderline()] - before[tpcc.orderline()], 50u);
}

TEST(TpccTest, HotGroupConfigurationMatchesPaper) {
  TpccWorkload tpcc(SmallTpcc());
  auto groups = tpcc.DefaultHotGroups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<TableId>{tpcc.district(), tpcc.stock(),
                                             tpcc.customer(), tpcc.orders()}));
  EXPECT_EQ(groups[1], (std::vector<TableId>{tpcc.orderline()}));
  // order_line appears in both analytic queries -> twice the access rate.
  int orderline_refs = 0;
  for (const auto& q : tpcc.analytic_queries()) {
    for (TableId t : q.tables) {
      if (t == tpcc.orderline()) ++orderline_refs;
    }
  }
  EXPECT_EQ(orderline_refs, 2);
}

TEST(TpccTest, TableOneStatistics) {
  TpccWorkload tpcc(SmallTpcc());
  WorkloadStats stats = MeasureWorkloadStats(&tpcc, /*num_txns=*/600);
  EXPECT_EQ(stats.num_written_tables, 8u);   // paper: num(T)=8
  EXPECT_EQ(stats.num_accessed_tables, 5u);  // paper: num(A)=5
  EXPECT_EQ(stats.num_hot_tables, 5u);       // paper: num(A∩T)=5
  // Paper reports 90.98%; our scaled mix lands in the high-80s/low-90s.
  EXPECT_GT(stats.hot_log_ratio, 0.80);
  EXPECT_LT(stats.hot_log_ratio, 0.97);
}

TEST(ChBenchmarkTest, TwentyTwoQueriesOverTwelveTables) {
  TpccConfig config = SmallTpcc();
  ChBenchmarkWorkload ch(config);
  EXPECT_EQ(ch.catalog().num_tables(), 12u);
  EXPECT_EQ(ch.analytic_queries().size(), 22u);
  for (const auto& q : ch.analytic_queries()) {
    EXPECT_FALSE(q.tables.empty()) << q.name;
    std::set<TableId> unique(q.tables.begin(), q.tables.end());
    EXPECT_EQ(unique.size(), q.tables.size()) << q.name << " has duplicates";
    for (TableId t : q.tables) EXPECT_LT(t, ch.catalog().num_tables());
  }
}

TEST(ChBenchmarkTest, TableIdsAlignWithEmbeddedTpcc) {
  ChBenchmarkWorkload ch(SmallTpcc());
  EXPECT_EQ(*ch.catalog().GetTableId("order_line"), ch.tpcc().orderline());
  EXPECT_EQ(*ch.catalog().GetTableId("supplier"), ch.supplier());
}

TEST(ChBenchmarkTest, Q1RatioTracksOrderLineShare) {
  ChBenchmarkWorkload ch(SmallTpcc());
  // Q1 reads only order_line; its hot ratio is order_line's log share,
  // which dominates the TPC-C mix (paper: 60.83%).
  double ratio = HotRatioForTables(&ch, 400,
                                   ch.analytic_queries()[0].tables);
  EXPECT_GT(ratio, 0.30);
  EXPECT_LT(ratio, 0.75);
}

TEST(ChBenchmarkTest, OltpRunsAndReadOnlyTablesStayClean) {
  ChBenchmarkWorkload ch(SmallTpcc());
  LogicalClock clock;
  PrimaryDb db(&ch.catalog(), &clock);
  Rng rng(5);
  ch.Load(&db, &rng);
  OltpDriver driver(&ch, &db);
  driver.Run(100);
  EXPECT_EQ(driver.txns_committed(), 100u);
  auto counts = db.log_buffer().DmlCountsByTable();
  EXPECT_EQ(counts.count(ch.supplier()) ? 0 : 0, 0);  // loaded once
  // supplier/nation/region receive only their load-phase inserts.
  EXPECT_EQ(counts[ch.supplier()], 100u);
  EXPECT_EQ(counts[ch.nation()], 25u);
  EXPECT_EQ(counts[ch.region()], 5u);
}

TEST(BusTrackerTest, CatalogShape) {
  BusTrackerWorkload bus;
  EXPECT_EQ(bus.catalog().num_tables(), 65u);
  EXPECT_EQ(bus.hot_tables().size(), 14u);
  EXPECT_TRUE(bus.catalog().GetTableId("m.trip").ok());
  EXPECT_TRUE(bus.catalog().GetTableId("m.app_state_log").ok());
}

TEST(BusTrackerTest, HotRatioNearPaper) {
  BusTrackerConfig config;
  config.rows_per_table = 20;
  BusTrackerWorkload bus(config);
  WorkloadStats stats = MeasureWorkloadStats(&bus, /*num_txns=*/3000);
  EXPECT_EQ(stats.num_hot_tables, 14u);  // paper: 14 hot tables
  // Paper: 37.12% of log entries on hot tables.
  EXPECT_NEAR(stats.hot_log_ratio, 0.3712, 0.03);
}

TEST(BusTrackerTest, RatesVaryOverTimeAndColdStayZero) {
  BusTrackerWorkload bus;
  TableId hot = bus.hot_tables().front();
  double r0 = bus.TrueRate(hot, 0);
  bool varies = false;
  for (int s = 1; s < 48; ++s) {
    if (std::abs(bus.TrueRate(hot, s) - r0) > 1.0) varies = true;
    EXPECT_GE(bus.TrueRate(hot, s), 0.0);
  }
  EXPECT_TRUE(varies);
  // Cold tables never accessed.
  TableId cold = *bus.catalog().GetTableId("m.app_state_log");
  for (int s = 0; s < 48; ++s) EXPECT_EQ(bus.TrueRate(cold, s), 0.0);
}

TEST(BusTrackerTest, GeneratedSeriesIsDeterministicPerSeed) {
  BusTrackerWorkload bus;
  auto a = bus.GenerateRateSeries(50, 0.1, 7);
  auto b = bus.GenerateRateSeries(50, 0.1, 7);
  auto c = bus.GenerateRateSeries(50, 0.1, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(a.front().size(), 65u);
}

TEST(BusTrackerTest, QuerySamplingFollowsPhase) {
  BusTrackerWorkload bus;
  Rng rng(3);
  // Sampling should produce valid indices and favor high-rate tables.
  std::vector<int> counts(bus.analytic_queries().size(), 0);
  for (int i = 0; i < 2000; ++i) {
    size_t q = bus.SampleQuery(&rng, 0.25);
    ASSERT_LT(q, bus.analytic_queries().size());
    counts[q]++;
  }
  int max_count = *std::max_element(counts.begin(), counts.end());
  int min_count = *std::min_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, min_count);  // non-uniform by construction
}

TEST(SeatsTest, TableOneStatistics) {
  SeatsWorkload seats;
  WorkloadStats stats = MeasureWorkloadStats(&seats, /*num_txns=*/4000);
  EXPECT_EQ(stats.num_written_tables, 4u);   // paper: num(T)=4
  EXPECT_EQ(stats.num_accessed_tables, 8u);  // paper: num(A)=8
  EXPECT_EQ(stats.num_hot_tables, 2u);       // paper: num(A∩T)=2
  // Paper: 38.08%.
  EXPECT_NEAR(stats.hot_log_ratio, 0.3808, 0.06);
}

TEST(WorkloadStatsTest, HotTablesAreIntersection) {
  TpccWorkload tpcc(SmallTpcc());
  auto hot = tpcc.HotTables();
  std::set<TableId> hot_set(hot.begin(), hot.end());
  EXPECT_EQ(hot_set, (std::set<TableId>{tpcc.district(), tpcc.customer(),
                                        tpcc.orders(), tpcc.orderline(),
                                        tpcc.stock()}));
}

}  // namespace
}  // namespace aets
