// Sharded multi-backup replay (DESIGN.md §11): the ShardMap partition, the
// shipper's per-shard sub-epoch split and conserved accounting, the
// ShardedBackup facade, and the cross-shard global-snapshot protocol —
// including the headline guarantee that GlobalSafeTimestamp() never exceeds
// the slowest shard's watermark, exercised with a deliberately stalled shard.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "aets/baselines/serial_replayer.h"
#include "aets/catalog/shard_map.h"
#include "aets/common/clock.h"
#include "aets/common/rng.h"
#include "aets/log/record.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replay/replayer_base.h"
#include "aets/replay/sharded_backup.h"
#include "aets/replay/snapshot_coordinator.h"
#include "aets/replication/fault_injection.h"
#include "aets/replication/log_shipper.h"
#include "test_seed.h"

namespace aets {
namespace {

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  return catalog;
}

void RunRandomWorkload(PrimaryDb* db, int num_tables, int num_txns,
                       uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < num_txns; ++i) {
    PrimaryTxn txn = db->Begin();
    int writes = static_cast<int>(rng.UniformInt(1, 6));
    for (int w = 0; w < writes; ++w) {
      TableId table = static_cast<TableId>(rng.UniformInt(0, num_tables - 1));
      int64_t key = rng.UniformInt(0, 199);
      int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {
        txn.Insert(table, key,
                   {{0, Value(static_cast<int64_t>(i))},
                    {1, Value(rng.AlphaString(4, 12))}});
      } else if (kind < 9) {
        txn.Update(table, key, {{0, Value(static_cast<int64_t>(i * 10))}});
      } else {
        txn.Delete(table, key);
      }
    }
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
}

ReplayRecoveryOptions FastRecovery() {
  ReplayRecoveryOptions options;
  options.reorder_window_pauses = 256;
  options.max_retries = 16;
  options.max_pending = 4096;
  return options;
}

/// Polls `cond` for up to `deadline_ms`; returns whether it became true.
bool WaitFor(const std::function<bool()>& cond, int deadline_ms = 10'000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// The shipper-level conservation invariant, globally and per shard.
void ExpectConserved(const LogShipper& shipper) {
  uint64_t shipped_sum = 0, dropped_sum = 0;
  for (int s = 0; s < shipper.shard_count(); ++s) {
    EXPECT_EQ(shipper.shard_produced(s),
              shipper.shard_shipped(s) + shipper.shard_dropped(s))
        << "shard " << s;
    shipped_sum += shipper.shard_shipped(s);
    dropped_sum += shipper.shard_dropped(s);
  }
  EXPECT_EQ(shipper.epochs_produced(), shipper.epochs_shipped() +
                                           shipper.epochs_dropped());
  EXPECT_EQ(shipper.epochs_produced(), shipped_sum + dropped_sum);
}

// ---------------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, HashIsRoundRobin) {
  ShardMap map = ShardMap::Hash(/*num_tables=*/10, /*num_shards=*/3);
  EXPECT_EQ(map.num_shards(), 3);
  EXPECT_EQ(map.num_tables(), 10u);
  for (TableId t = 0; t < 10; ++t) {
    EXPECT_EQ(map.shard_of(t), static_cast<int>(t % 3)) << "table " << t;
  }
  EXPECT_EQ(map.TablesOnShard(0), (std::vector<TableId>{0, 3, 6, 9}));
  EXPECT_EQ(map.TablesOnShard(1), (std::vector<TableId>{1, 4, 7}));
  EXPECT_EQ(map.TablesOnShard(2), (std::vector<TableId>{2, 5, 8}));
  // Tables beyond the map (registered after it was built) still route
  // deterministically.
  EXPECT_EQ(map.shard_of(11), 2);
}

TEST(ShardMapTest, ExplicitValidates) {
  auto ok = ShardMap::Explicit({1, 0, 1, 1}, 2);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->shard_of(0), 1);
  EXPECT_EQ(ok->shard_of(1), 0);
  EXPECT_EQ(ok->TablesOnShard(1), (std::vector<TableId>{0, 2, 3}));

  EXPECT_FALSE(ShardMap::Explicit({0, 2}, 2).ok());   // shard out of range
  EXPECT_FALSE(ShardMap::Explicit({0, -1}, 2).ok());  // negative shard
  EXPECT_FALSE(ShardMap::Explicit({}, 2).ok());       // empty map
}

// ---------------------------------------------------------------------------
// Sub-epoch split

using DmlKey = std::tuple<TableId, int64_t, Timestamp, TxnId>;

std::multiset<DmlKey> DmlsOf(const Epoch& epoch) {
  std::multiset<DmlKey> out;
  for (const TxnLog& txn : epoch.txns) {
    for (const LogRecord& rec : txn.records) {
      if (rec.is_dml()) {
        out.insert({rec.table_id, rec.row_key, rec.timestamp, rec.txn_id});
      }
    }
  }
  return out;
}

TEST(ShardedShipperTest, SubEpochSplitRoutesEveryDml) {
  constexpr int kTables = 6;
  constexpr int kShards = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  ShardMap map = ShardMap::Hash(kTables, kShards);

  // The workload: a random mix, then single-table epochs that leave two of
  // the three shards untouched (forcing synthetic heartbeat fillers), then
  // an idle heartbeat.
  auto run_workload = [&](PrimaryDb* db, LogShipper* shipper) {
    RunRandomWorkload(db, kTables, 300, test::DeriveSeed(77));
    shipper->FlushEpoch();
    for (int i = 0; i < 3; ++i) {
      PrimaryTxn txn = db->Begin();
      txn.Insert(0, 1000 + i,
                 {{0, Value(static_cast<int64_t>(i))},
                  {1, Value(std::string("tail"))}});
      ASSERT_TRUE(db->Commit(std::move(txn)).ok());
      shipper->FlushEpoch();
    }
    shipper->ShipHeartbeat(db->AcquireHeartbeatTs());
    shipper->Finish();
  };

  // Record the same deterministic workload twice — once unsharded (ground
  // truth), once through the sharded shipper. Fresh clocks make the commit
  // timestamps identical run to run.
  std::vector<ShippedEpoch> whole;
  {
    LogicalClock clock;
    PrimaryDb db(catalog.get(), &clock);
    LogShipper shipper(/*epoch_size=*/16);
    db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
    EpochChannel recorder(0);
    shipper.AttachChannel(&recorder);
    run_workload(&db, &shipper);
    while (auto e = recorder.TryReceive()) whole.push_back(std::move(*e));
  }

  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16);
  shipper.SetShardMap(&map);
  ASSERT_EQ(shipper.shard_count(), kShards);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  std::vector<std::unique_ptr<EpochChannel>> recorders;
  for (int s = 0; s < kShards; ++s) {
    recorders.push_back(std::make_unique<EpochChannel>(0));
    shipper.AttachShardChannel(s, recorders.back().get());
  }
  run_workload(&db, &shipper);

  std::vector<std::vector<ShippedEpoch>> lanes(kShards);
  for (int s = 0; s < kShards; ++s) {
    while (auto e = recorders[static_cast<size_t>(s)]->TryReceive()) {
      lanes[static_cast<size_t>(s)].push_back(std::move(*e));
    }
    ASSERT_EQ(lanes[static_cast<size_t>(s)].size(), whole.size())
        << "shard " << s << " lane is not id-aligned with the whole stream";
  }

  size_t synthetic_heartbeats = 0;
  for (size_t i = 0; i < whole.size(); ++i) {
    const ShippedEpoch& full = whole[i];
    std::multiset<DmlKey> want;
    if (!full.is_heartbeat()) {
      auto decoded = DecodeEpoch(full);
      ASSERT_TRUE(decoded.ok());
      want = DmlsOf(*decoded);
    }
    std::multiset<DmlKey> got;
    for (int s = 0; s < kShards; ++s) {
      const ShippedEpoch& sub = lanes[static_cast<size_t>(s)][i];
      EXPECT_EQ(sub.epoch_id, full.epoch_id);
      if (full.is_heartbeat()) {
        // A primary heartbeat fans out as a heartbeat on every lane.
        EXPECT_TRUE(sub.is_heartbeat());
        EXPECT_EQ(sub.heartbeat_ts, full.heartbeat_ts);
        continue;
      }
      if (sub.is_heartbeat()) {
        // Synthetic filler: this shard was untouched by the epoch, and the
        // heartbeat carries the full epoch's max commit timestamp.
        ++synthetic_heartbeats;
        EXPECT_EQ(sub.heartbeat_ts, full.max_commit_ts);
        continue;
      }
      // Data sub-epoch: CRC-intact, watermark patched to the full epoch's
      // max, and every DML owned by this shard.
      EXPECT_TRUE(sub.PayloadIntact());
      EXPECT_EQ(sub.max_commit_ts, full.max_commit_ts);
      auto decoded = DecodeEpoch(sub);
      ASSERT_TRUE(decoded.ok());
      for (const TxnLog& txn : decoded->txns) {
        ASSERT_FALSE(txn.records.empty());
        EXPECT_EQ(txn.records.front().type, LogRecordType::kBegin);
        EXPECT_EQ(txn.records.back().type, LogRecordType::kCommit);
      }
      std::multiset<DmlKey> shard_dmls = DmlsOf(*decoded);
      for (const DmlKey& d : shard_dmls) {
        EXPECT_EQ(map.shard_of(std::get<0>(d)), s)
            << "table " << std::get<0>(d) << " leaked onto shard " << s;
      }
      got.insert(shard_dmls.begin(), shard_dmls.end());
    }
    if (!full.is_heartbeat()) {
      // Exactly-once routing: the union over shards is the whole epoch.
      EXPECT_EQ(got, want) << "epoch " << full.epoch_id;
    }
  }
  EXPECT_GT(synthetic_heartbeats, 0u)
      << "workload never left a shard untouched; weak test";

  // Conserved accounting: every lane delivered the full id sequence.
  ExpectConserved(shipper);
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(shipper.shard_produced(s), whole.size()) << "shard " << s;
    EXPECT_EQ(shipper.shard_dropped(s), 0u) << "shard " << s;
  }
}

TEST(ShardedShipperTest, ShardSourceServesPerShardNacks) {
  constexpr int kTables = 4;
  constexpr int kShards = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  ShardMap map = ShardMap::Hash(kTables, kShards);
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/8, /*retention_capacity=*/1024);
  shipper.SetShardMap(&map);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  std::vector<std::unique_ptr<EpochChannel>> recorders;
  for (int s = 0; s < kShards; ++s) {
    recorders.push_back(std::make_unique<EpochChannel>(0));
    shipper.AttachShardChannel(s, recorders.back().get());
  }
  RunRandomWorkload(&db, kTables, 100, test::DeriveSeed(8));
  shipper.Finish();

  ASSERT_GT(shipper.NextEpochId(), 2u);
  for (int s = 0; s < kShards; ++s) {
    EpochSource* source = shipper.shard_source(s);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->NextEpochId(), shipper.NextEpochId());
    std::vector<ShippedEpoch> lane;
    while (auto e = recorders[static_cast<size_t>(s)]->TryReceive()) {
      lane.push_back(std::move(*e));
    }
    // Every retained id re-fetches to the exact sub-epoch this lane shipped.
    for (const ShippedEpoch& sent : lane) {
      auto again = source->FetchEpoch(sent.epoch_id);
      ASSERT_TRUE(again.has_value()) << "shard " << s << " id "
                                     << sent.epoch_id;
      EXPECT_EQ(again->is_heartbeat(), sent.is_heartbeat());
      EXPECT_EQ(again->payload_crc, sent.payload_crc);
      EXPECT_EQ(again->max_commit_ts, sent.max_commit_ts);
    }
  }
  EXPECT_GT(shipper.retransmits(), 0u);
  EXPECT_FALSE(shipper.FetchShardEpoch(0, shipper.NextEpochId()).has_value());
}

// ---------------------------------------------------------------------------
// GlobalSnapshotCoordinator (unit level, fake probes)

TEST(SnapshotCoordinatorTest, SafeTimestampIsMinOverShards) {
  std::atomic<Timestamp> a{0}, b{0};
  GlobalSnapshotCoordinator coordinator;
  EXPECT_EQ(coordinator.AttachShard([&] { return a.load(); }), 0);
  EXPECT_EQ(coordinator.AttachShard([&] { return b.load(); }), 1);
  ASSERT_EQ(coordinator.num_shards(), 2);

  EXPECT_EQ(coordinator.GlobalSafeTimestamp(), kInvalidTimestamp);
  a = 10;
  EXPECT_EQ(coordinator.GlobalSafeTimestamp(), kInvalidTimestamp);  // b at 0
  b = 7;
  EXPECT_EQ(coordinator.GlobalSafeTimestamp(), 7u);
  EXPECT_EQ(coordinator.ShardWatermark(0), 10u);
  EXPECT_EQ(coordinator.ShardWatermark(1), 7u);
  // The lag gauges were refreshed by the safe-timestamp read.
  EXPECT_EQ(obs::GetGauge("shard.0.watermark_lag")->value(), 0);
  EXPECT_EQ(obs::GetGauge("shard.1.watermark_lag")->value(), 3);
  // Monotone backstop: a probe glitching backwards cannot pull the published
  // safe timestamp back.
  b = 5;
  EXPECT_EQ(coordinator.GlobalSafeTimestamp(), 7u);
  b = 12;
  EXPECT_EQ(coordinator.GlobalSafeTimestamp(), 10u);
}

TEST(SnapshotCoordinatorTest, PinsHoldTheGcHorizon) {
  std::atomic<Timestamp> a{5}, b{5};
  GlobalSnapshotCoordinator coordinator;
  coordinator.AttachShard([&] { return a.load(); });
  coordinator.AttachShard([&] { return b.load(); });

  EXPECT_EQ(coordinator.MinPinnedTs(), kInvalidTimestamp);
  EXPECT_EQ(coordinator.GcHorizon(), 5u);

  SnapshotHandle snap = coordinator.AcquireSnapshot();
  EXPECT_TRUE(snap.valid());
  EXPECT_EQ(snap.ts(), 5u);
  a = 20;
  b = 20;
  EXPECT_EQ(coordinator.GlobalSafeTimestamp(), 20u);
  // The live pin holds GC back at the snapshot even as the frontier moves.
  EXPECT_EQ(coordinator.MinPinnedTs(), 5u);
  EXPECT_EQ(coordinator.GcHorizon(), 5u);

  {
    SnapshotHandle newer = coordinator.AcquireSnapshot();
    EXPECT_EQ(newer.ts(), 20u);
    EXPECT_EQ(coordinator.GcHorizon(), 5u);  // oldest pin wins
  }
  EXPECT_EQ(coordinator.GcHorizon(), 5u);  // newer released, old pin remains

  SnapshotHandle moved = std::move(snap);
  EXPECT_FALSE(snap.valid());
  EXPECT_EQ(coordinator.GcHorizon(), 5u);  // move does not double-release
  moved.Release();
  EXPECT_EQ(coordinator.MinPinnedTs(), kInvalidTimestamp);
  EXPECT_EQ(coordinator.GcHorizon(), 20u);
}

// ---------------------------------------------------------------------------
// ShardedBackup end to end

AetsOptions BaseOptions(int num_tables) {
  AetsOptions options;
  options.replay_threads = 8;
  options.commit_threads = 4;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates.assign(static_cast<size_t>(num_tables), 1.0);
  return options;
}

TEST(ShardedBackupTest, MatchesPrimaryAcrossShardCounts) {
  constexpr int kTables = 6;
  for (int shards : {1, 2, 3, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
    ShardMap map = ShardMap::Hash(kTables, shards);
    LogicalClock clock;
    PrimaryDb db(catalog.get(), &clock);
    LogShipper shipper(/*epoch_size=*/16);
    shipper.SetShardMap(&map);
    db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

    std::vector<std::unique_ptr<EpochChannel>> channels;
    std::vector<EpochChannel*> raw;
    for (int s = 0; s < shards; ++s) {
      channels.push_back(std::make_unique<EpochChannel>(1024));
      shipper.AttachShardChannel(s, channels.back().get());
      raw.push_back(channels.back().get());
    }
    auto backup =
        MakeShardedAetsBackup(catalog.get(), &map, raw, BaseOptions(kTables));
    ASSERT_EQ(backup->num_shards(), shards);
    ASSERT_TRUE(backup->Start().ok());

    RunRandomWorkload(&db, kTables, 500, test::DeriveSeed(200u + shards));
    shipper.Finish();
    backup->Stop();

    Timestamp final_ts = db.last_commit_ts();
    // Every table's history matches the primary, read through the facade's
    // per-shard routing.
    for (TableId t = 0; t < kTables; ++t) {
      const Memtable* got = backup->StoreForTable(t)->GetTable(t);
      const Memtable* want = db.store().GetTable(t);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->DigestAt(final_ts), want->DigestAt(final_ts))
          << "table " << t;
      // Algorithm 3 through the facade: the global frontier covers tables
      // whose own tg_cmt_ts stops at their last touching commit.
      EXPECT_TRUE(IsVisible(*backup, {t}, final_ts)) << "table " << t;
    }
    // The cross-shard frontier converged to the primary's last commit.
    EXPECT_EQ(backup->GlobalVisibleTs(), final_ts);
    EXPECT_EQ(backup->coordinator().GlobalSafeTimestamp(), final_ts);
    // Aggregated stats: every sub-epoch got replayed somewhere.
    EXPECT_GT(backup->stats().epochs.load(), 0u);
    ExpectConserved(shipper);
  }
}

TEST(ShardedBackupTest, ChaosPerShardLinksRecoverViaShardSources) {
  constexpr int kTables = 5;
  constexpr int kShards = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  ShardMap map = ShardMap::Hash(kTables, kShards);
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/8, /*retention_capacity=*/8192);
  shipper.SetShardMap(&map);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  // The acceptance fault mix, independently seeded per shard link.
  std::vector<std::unique_ptr<FaultInjectingChannel>> channels;
  std::vector<EpochChannel*> raw;
  for (int s = 0; s < kShards; ++s) {
    FaultProfile profile;
    profile.drop = 0.05;
    profile.duplicate = 0.05;
    profile.corrupt = 0.01;
    profile.seed = test::DeriveSeed(900u + static_cast<uint64_t>(s));
    channels.push_back(
        std::make_unique<FaultInjectingChannel>(profile, /*capacity=*/4096));
    shipper.AttachShardChannel(s, channels.back().get());
    raw.push_back(channels.back().get());
  }
  auto backup =
      MakeShardedAetsBackup(catalog.get(), &map, raw, BaseOptions(kTables));
  for (int s = 0; s < kShards; ++s) {
    backup->SetShardEpochSource(s, shipper.shard_source(s));
    auto* base = dynamic_cast<ReplayerBase*>(backup->shard(s));
    ASSERT_NE(base, nullptr);
    base->SetRecoveryOptions(FastRecovery());
  }
  ASSERT_TRUE(backup->Start().ok());

  RunRandomWorkload(&db, kTables, 600, test::DeriveSeed(901));
  shipper.Finish();
  backup->Stop();

  uint64_t faults = 0;
  for (auto& ch : channels) faults += ch->faults_injected();
  EXPECT_GT(faults, 0u);

  Timestamp final_ts = db.last_commit_ts();
  for (int s = 0; s < kShards; ++s) {
    auto* base = dynamic_cast<ReplayerBase*>(backup->shard(s));
    EXPECT_TRUE(base->error().ok())
        << "shard " << s << ": " << base->error().ToString();
  }
  for (TableId t = 0; t < kTables; ++t) {
    EXPECT_EQ(backup->StoreForTable(t)->GetTable(t)->DigestAt(final_ts),
              db.store().GetTable(t)->DigestAt(final_ts))
        << "table " << t;
  }
  EXPECT_EQ(backup->GlobalVisibleTs(), final_ts);
  EXPECT_GT(shipper.retransmits(), 0u);
  ExpectConserved(shipper);
}

TEST(ShardedBackupTest, StalledShardBoundsGlobalSafeTimestamp) {
  constexpr int kTables = 4;
  constexpr int kShards = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  ShardMap map = ShardMap::Hash(kTables, kShards);
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16);
  shipper.SetShardMap(&map);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  // Build the shards by hand so shard 0 gets a blocking commit hook: its
  // first epoch commits, then every later commit parks on a gate.
  std::vector<std::unique_ptr<EpochChannel>> channels;
  std::vector<std::unique_ptr<Replayer>> replayers;
  for (int s = 0; s < kShards; ++s) {
    channels.push_back(std::make_unique<EpochChannel>(0));
    shipper.AttachShardChannel(s, channels.back().get());
    AetsOptions options;
    options.name = "stall.s" + std::to_string(s);
    options.replay_threads = 2;
    options.commit_threads = 1;
    options.grouping = GroupingMode::kPerTable;
    replayers.push_back(std::make_unique<AetsReplayer>(
        catalog.get(), channels.back().get(), options));
  }
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool released = false;
  int commits_seen = 0;
  auto* stalled = dynamic_cast<ReplayerBase*>(replayers[0].get());
  ASSERT_NE(stalled, nullptr);
  stalled->SetCommitHookForTest([&](const ShippedEpoch&) {
    std::unique_lock<std::mutex> lk(gate_mu);
    if (++commits_seen >= 2) gate_cv.wait(lk, [&] { return released; });
  });

  ShardedBackup backup(&map, std::move(replayers));
  ASSERT_TRUE(backup.Start().ok());

  RunRandomWorkload(&db, kTables, 400, test::DeriveSeed(55));
  Timestamp final_ts = db.last_commit_ts();
  shipper.Finish();

  // The healthy shard drains everything; the stalled shard is stuck after
  // its first epoch.
  ASSERT_TRUE(WaitFor([&] { return backup.shard(1)->GlobalVisibleTs() ==
                                   final_ts; }))
      << "healthy shard never converged";
  Timestamp stalled_wm = backup.shard(0)->GlobalVisibleTs();
  EXPECT_LT(stalled_wm, final_ts);

  // The headline guarantee: the global safe timestamp tracks the SLOWEST
  // shard, not the freshest — repeatedly, while the stall persists.
  for (int i = 0; i < 50; ++i) {
    Timestamp safe = backup.coordinator().GlobalSafeTimestamp();
    EXPECT_LE(safe, backup.shard(0)->GlobalVisibleTs());
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(backup.coordinator().GlobalSafeTimestamp(), stalled_wm);
  EXPECT_EQ(backup.GlobalVisibleTs(), stalled_wm);
  // The stall is observable: shard 0 lags, shard 1 does not.
  EXPECT_GT(obs::GetGauge("shard.0.watermark_lag")->value(), 0);
  EXPECT_EQ(obs::GetGauge("shard.1.watermark_lag")->value(), 0);
  // The healthy shard itself is NOT dragged down — only the cross-shard
  // frontier is. (Through the facade a single-shard query would still gate
  // on the coordinator minimum.)
  for (TableId t = 0; t < kTables; ++t) {
    if (map.shard_of(t) == 1) {
      EXPECT_TRUE(IsVisible(*backup.shard(1), {t}, final_ts));
    }
  }
  // A snapshot pinned during the stall is bounded by the stalled shard.
  {
    SnapshotHandle snap = backup.coordinator().AcquireSnapshot();
    EXPECT_EQ(snap.ts(), stalled_wm);
  }

  // Release the gate: the stalled shard catches up and the global frontier
  // converges to the primary's last commit.
  {
    std::lock_guard<std::mutex> lk(gate_mu);
    released = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(WaitFor([&] {
    return backup.coordinator().GlobalSafeTimestamp() == final_ts;
  })) << "stalled shard never caught up after release";
  backup.Stop();

  for (TableId t = 0; t < kTables; ++t) {
    EXPECT_EQ(backup.StoreForTable(t)->GetTable(t)->DigestAt(final_ts),
              db.store().GetTable(t)->DigestAt(final_ts))
        << "table " << t;
  }
}

TEST(ShardedBackupTest, LatchedShardFreezesGlobalFrontier) {
  // A shard that dies (sticky error) behaves like a permanent stall: the
  // global safe timestamp freezes at the failure point instead of serving
  // torn cross-shard reads, while healthy shards keep their own tables
  // fresh.
  constexpr int kTables = 4;
  constexpr int kShards = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  ShardMap map = ShardMap::Hash(kTables, kShards);
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16, /*retention_capacity=*/4);
  shipper.SetShardMap(&map);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  // Shard 0's link silently eats every epoch after the first two, with no
  // NACK source attached and a tiny retention window: recovery is
  // impossible and the shard latches a terminal error.
  std::vector<std::unique_ptr<EpochChannel>> channels;
  std::vector<EpochChannel*> raw;
  for (int s = 0; s < kShards; ++s) {
    channels.push_back(std::make_unique<EpochChannel>(0));
    raw.push_back(channels.back().get());
  }
  shipper.AttachShardChannel(1, raw[1]);
  EpochChannel tap(0);
  shipper.AttachShardChannel(0, &tap);

  auto backup =
      MakeShardedAetsBackup(catalog.get(), &map, raw, BaseOptions(kTables));
  auto* shard0 = dynamic_cast<ReplayerBase*>(backup->shard(0));
  ASSERT_NE(shard0, nullptr);
  shard0->SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(backup->Start().ok());

  RunRandomWorkload(&db, kTables, 300, test::DeriveSeed(66));
  shipper.Finish();
  // Forward only the first two epochs to shard 0, then a gap it can never
  // close (the retention window is long gone for the missing ids).
  size_t forwarded = 0;
  std::vector<ShippedEpoch> held;
  while (auto e = tap.TryReceive()) {
    if (forwarded < 2) {
      ASSERT_TRUE(raw[0]->Send(std::move(*e)));
      ++forwarded;
    } else {
      held.push_back(std::move(*e));
    }
  }
  ASSERT_GT(held.size(), 2u);
  ASSERT_TRUE(raw[0]->Send(held.back()));  // reveal the gap
  raw[0]->Close();
  backup->Stop();

  EXPECT_FALSE(shard0->error().ok());
  auto* shard1 = dynamic_cast<ReplayerBase*>(backup->shard(1));
  EXPECT_TRUE(shard1->error().ok()) << shard1->error().ToString();

  Timestamp final_ts = db.last_commit_ts();
  Timestamp safe = backup->coordinator().GlobalSafeTimestamp();
  EXPECT_LT(safe, final_ts);
  EXPECT_LE(safe, backup->shard(0)->GlobalVisibleTs());
  // Healthy shard's tables stayed fresh and correct.
  for (TableId t = 0; t < kTables; ++t) {
    if (map.shard_of(t) != 1) continue;
    EXPECT_TRUE(IsVisible(*backup->shard(1), {t}, final_ts));
    EXPECT_EQ(backup->StoreForTable(t)->GetTable(t)->DigestAt(final_ts),
              db.store().GetTable(t)->DigestAt(final_ts))
        << "table " << t;
  }
}

TEST(ShardedBackupTest, SingleShardFacadeIsTransparent) {
  // N=1 through the facade behaves exactly like the bare replayer: same
  // digests, same watermarks, name reflects the wrapping.
  constexpr int kTables = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  ShardMap map = ShardMap::Hash(kTables, 1);
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16);
  shipper.SetShardMap(&map);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  EpochChannel channel(1024);
  shipper.AttachShardChannel(0, &channel);

  std::vector<std::unique_ptr<Replayer>> shards;
  shards.push_back(std::make_unique<SerialReplayer>(catalog.get(), &channel));
  ShardedBackup backup(&map, std::move(shards));
  EXPECT_NE(backup.name().find("Sharded["), std::string::npos);
  ASSERT_TRUE(backup.Start().ok());
  RunRandomWorkload(&db, kTables, 200, test::DeriveSeed(12));
  shipper.Finish();
  backup.Stop();

  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(backup.GlobalVisibleTs(), final_ts);
  EXPECT_EQ(backup.store()->DigestAt(final_ts), db.store().DigestAt(final_ts));
  EXPECT_EQ(backup.stats().txns.load(), 200u);
  ExpectConserved(shipper);
}

}  // namespace
}  // namespace aets
