// Primary OLTP engine and replication (shipper/channel) tests.

#include <gtest/gtest.h>

#include <thread>

#include "aets/primary/primary_db.h"
#include "aets/replication/log_shipper.h"

namespace aets {
namespace {

class PrimaryTest : public ::testing::Test {
 protected:
  PrimaryTest() {
    t0_ = catalog_.RegisterTable("t0", Schema::Of({{"a", ColumnType::kInt64},
                                                   {"b", ColumnType::kString}}))
              .value();
    t1_ = catalog_.RegisterTable("t1", Schema::Of({{"a", ColumnType::kInt64}}))
              .value();
  }

  Catalog catalog_;
  LogicalClock clock_;
  TableId t0_, t1_;
};

TEST_F(PrimaryTest, CommitAssignsMonotonicIdsAndTimestamps) {
  PrimaryDb db(&catalog_, &clock_);
  PrimaryTxn txn1 = db.Begin();
  txn1.Insert(t0_, 1, {{0, Value(int64_t{10})}});
  auto r1 = db.Commit(std::move(txn1));
  ASSERT_TRUE(r1.ok());

  PrimaryTxn txn2 = db.Begin();
  txn2.Insert(t0_, 2, {{0, Value(int64_t{20})}});
  auto r2 = db.Commit(std::move(txn2));
  ASSERT_TRUE(r2.ok());

  EXPECT_LT(r1->txn_id, r2->txn_id);
  EXPECT_LT(r1->commit_ts, r2->commit_ts);
  EXPECT_EQ(db.last_committed_txn(), r2->txn_id);
  EXPECT_EQ(db.last_commit_ts(), r2->commit_ts);
}

TEST_F(PrimaryTest, TxnLogIsBeginDmlCommit) {
  PrimaryDb db(&catalog_, &clock_);
  PrimaryTxn txn = db.Begin();
  txn.Insert(t0_, 1, {{0, Value(int64_t{1})}});
  txn.Update(t1_, 2, {{0, Value(int64_t{2})}});
  txn.Delete(t0_, 3);
  auto result = db.Commit(std::move(txn));
  ASSERT_TRUE(result.ok());
  const auto& records = result->records;
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().type, LogRecordType::kBegin);
  EXPECT_EQ(records[1].type, LogRecordType::kInsert);
  EXPECT_EQ(records[2].type, LogRecordType::kUpdate);
  EXPECT_EQ(records[3].type, LogRecordType::kDelete);
  EXPECT_EQ(records.back().type, LogRecordType::kCommit);
  EXPECT_EQ(records.back().timestamp, result->commit_ts);
  // All records share the txn id; LSNs strictly increase.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].txn_id, result->txn_id);
    if (i > 0) {
      EXPECT_GT(records[i].lsn, records[i - 1].lsn);
    }
  }
}

TEST_F(PrimaryTest, BeforeImageChainIsWellFormed) {
  PrimaryDb db(&catalog_, &clock_);
  TxnId writer = kInvalidTxnId;
  for (int i = 0; i < 5; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Update(t0_, 77, {{0, Value(static_cast<int64_t>(i))}});
    auto result = db.Commit(std::move(txn));
    ASSERT_TRUE(result.ok());
    const LogRecord& dml = result->records[1];
    EXPECT_EQ(dml.prev_txn_id, writer);
    EXPECT_EQ(dml.row_seq, static_cast<uint64_t>(i));
    writer = result->txn_id;
  }
}

TEST_F(PrimaryTest, EmptyTransactionRejected) {
  PrimaryDb db(&catalog_, &clock_);
  auto result = db.Commit(db.Begin());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(PrimaryTest, UnknownTableRejected) {
  PrimaryDb db(&catalog_, &clock_);
  PrimaryTxn txn = db.Begin();
  txn.Insert(999, 1, {{0, Value(int64_t{1})}});
  EXPECT_FALSE(db.Commit(std::move(txn)).ok());
}

TEST_F(PrimaryTest, ReadsOwnCommittedState) {
  PrimaryDb db(&catalog_, &clock_);
  PrimaryTxn txn = db.Begin();
  txn.Insert(t0_, 5, {{0, Value(int64_t{50})}, {1, Value("row5")}});
  auto result = db.Commit(std::move(txn));
  ASSERT_TRUE(result.ok());
  auto row = db.Read(t0_, 5, result->commit_ts);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->at(0).as_int64(), 50);
  EXPECT_EQ(row->at(1).as_string(), "row5");
  EXPECT_FALSE(db.Read(t0_, 5, result->commit_ts - 1).has_value());
}

TEST_F(PrimaryTest, SinkReceivesCommitsInOrder) {
  PrimaryDb db(&catalog_, &clock_);
  std::vector<TxnId> order;
  db.SetCommitSink([&](TxnLog txn) { order.push_back(txn.txn_id); });
  for (int i = 0; i < 10; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Insert(t0_, i, {{0, Value(static_cast<int64_t>(i))}});
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 1; i < order.size(); ++i) EXPECT_GT(order[i], order[i - 1]);
}

TEST_F(PrimaryTest, ConcurrentCommitsSerialize) {
  PrimaryDb db(&catalog_, &clock_);
  std::vector<TxnId> order;
  db.SetCommitSink([&](TxnLog txn) { order.push_back(txn.txn_id); });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, this, t] {
      for (int i = 0; i < 200; ++i) {
        PrimaryTxn txn = db.Begin();
        txn.Update(t0_, t * 1000 + i, {{0, Value(static_cast<int64_t>(i))}});
        ASSERT_TRUE(db.Commit(std::move(txn)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(order.size(), 800u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_EQ(order[i], order[i - 1] + 1);  // gap-free, strictly ordered
  }
}

TEST_F(PrimaryTest, HeartbeatTsIsSafe) {
  PrimaryDb db(&catalog_, &clock_);
  PrimaryTxn txn = db.Begin();
  txn.Insert(t0_, 1, {{0, Value(int64_t{1})}});
  auto before = db.Commit(std::move(txn));
  Timestamp hb = db.AcquireHeartbeatTs();
  EXPECT_GT(hb, before->commit_ts);
  PrimaryTxn txn2 = db.Begin();
  txn2.Insert(t0_, 2, {{0, Value(int64_t{2})}});
  auto after = db.Commit(std::move(txn2));
  EXPECT_GT(after->commit_ts, hb);
}

TEST_F(PrimaryTest, ShipperSealsAndFansOut) {
  PrimaryDb db(&catalog_, &clock_);
  LogShipper shipper(/*epoch_size=*/4);
  EpochChannel ch1, ch2;
  shipper.AttachChannel(&ch1);
  shipper.AttachChannel(&ch2);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  for (int i = 0; i < 10; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Insert(t0_, i, {{0, Value(static_cast<int64_t>(i))}});
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  shipper.Finish();
  // 10 txns at epoch size 4 -> 2 full epochs + 1 partial.
  EXPECT_EQ(shipper.epochs_shipped(), 3u);
  for (EpochChannel* ch : {&ch1, &ch2}) {
    size_t txns = 0;
    EpochId expected = 0;
    while (auto epoch = ch->Receive()) {
      EXPECT_EQ(epoch->epoch_id, expected++);
      txns += epoch->num_txns;
    }
    EXPECT_EQ(txns, 10u);
  }
}

TEST_F(PrimaryTest, HeartbeatsShipWhenIdle) {
  PrimaryDb db(&catalog_, &clock_);
  LogShipper shipper(/*epoch_size=*/100);
  EpochChannel ch;
  shipper.AttachChannel(&ch);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  PrimaryTxn txn = db.Begin();
  txn.Insert(t0_, 1, {{0, Value(int64_t{1})}});
  ASSERT_TRUE(db.Commit(std::move(txn)).ok());

  shipper.StartHeartbeats([&db] { return db.AcquireHeartbeatTs(); },
                          /*interval_us=*/5'000);
  // Wait for at least one heartbeat cycle.
  int waited = 0;
  while (shipper.heartbeats_shipped() == 0 && waited < 2000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++waited;
  }
  shipper.Finish();
  EXPECT_GT(shipper.heartbeats_shipped(), 0u);

  // The idle flush ships the pending partial epoch BEFORE the heartbeat,
  // and the heartbeat timestamp covers that data.
  auto first = ch.Receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->is_heartbeat());
  EXPECT_EQ(first->num_txns, 1u);
  auto second = ch.Receive();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->is_heartbeat());
  EXPECT_GT(second->heartbeat_ts, first->max_commit_ts);
}

}  // namespace
}  // namespace aets
