// Zero-copy decode tests: DecodeView must agree with the owning Decode on
// every record (all value types, NULLs, empty strings, wide rows), reject
// the same truncations/corruptions, and PackedDelta must round-trip through
// both the wire form and ColumnValue vectors, including the GC fold.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aets/common/rng.h"
#include "aets/log/codec.h"
#include "aets/log/record.h"
#include "aets/storage/memtable.h"
#include "aets/storage/packed_delta.h"
#include "aets/storage/version_chain.h"

namespace aets {
namespace {

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Value(static_cast<int64_t>(rng->Next()));
    case 1:
      return Value(rng->Gaussian(0, 1e9));
    case 2:
      return Value(rng->AlphaString(1, 64));
    case 3:
      return Value(std::string());  // empty string, distinct from NULL
    default:
      return Value::Null();
  }
}

LogRecord RandomDml(Rng* rng, int num_cols) {
  std::vector<ColumnValue> values;
  values.reserve(static_cast<size_t>(num_cols));
  for (int c = 0; c < num_cols; ++c) {
    values.push_back(
        {static_cast<ColumnId>(rng->UniformInt(0, 1000)), RandomValue(rng)});
  }
  auto type = static_cast<LogRecordType>(
      rng->UniformInt(static_cast<int>(LogRecordType::kInsert),
                      static_cast<int>(LogRecordType::kDelete)));
  return LogRecord::Dml(type, rng->Next(), rng->Next(), rng->Next(),
                        static_cast<TableId>(rng->UniformInt(0, 64)),
                        static_cast<int64_t>(rng->Next()), std::move(values),
                        rng->Next(), rng->Next());
}

// Property: for every record the view decode and the owning decode agree
// field-for-field, Materialize() reproduces the original record exactly, and
// both decoders consume the same number of bytes.
class ViewCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewCodecFuzzTest, DecodeViewAgreesWithDecode) {
  Rng rng(GetParam());
  std::vector<LogRecord> records;
  for (int i = 0; i < 150; ++i) {
    int kind = static_cast<int>(rng.UniformInt(0, 4));
    if (kind == 0) {
      records.push_back(LogRecord::Begin(rng.Next(), rng.Next(), rng.Next()));
    } else if (kind == 1) {
      records.push_back(LogRecord::Commit(rng.Next(), rng.Next(), rng.Next()));
    } else if (kind == 2) {
      records.push_back(
          LogRecord::Heartbeat(rng.Next(), rng.Next(), rng.Next()));
    } else {
      // Column counts spanning 0 (empty delta) through 64 (wide rows).
      records.push_back(
          RandomDml(&rng, static_cast<int>(rng.UniformInt(0, 64))));
    }
  }
  std::string buf = LogCodec::EncodeAll(records);

  size_t view_offset = 0;
  size_t own_offset = 0;
  for (const LogRecord& expected : records) {
    auto view = LogCodec::DecodeView(buf, &view_offset);
    auto owned = LogCodec::Decode(buf, &own_offset);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    ASSERT_TRUE(owned.ok()) << owned.status().ToString();
    EXPECT_EQ(view_offset, own_offset);

    EXPECT_EQ(view->type, expected.type);
    EXPECT_EQ(view->lsn, expected.lsn);
    EXPECT_EQ(view->txn_id, expected.txn_id);
    EXPECT_EQ(view->timestamp, expected.timestamp);
    if (expected.is_dml()) {
      EXPECT_EQ(view->table_id, expected.table_id);
      EXPECT_EQ(view->row_key, expected.row_key);
      EXPECT_EQ(view->prev_txn_id, expected.prev_txn_id);
      EXPECT_EQ(view->row_seq, expected.row_seq);
      ASSERT_EQ(view->num_values, expected.values.size());
      // Walk the zero-copy reader against the owned values.
      DeltaReader reader = view->values();
      for (const ColumnValue& cv : expected.values) {
        ColumnId col;
        ValueView vv;
        ASSERT_TRUE(reader.Next(&col, &vv));
        EXPECT_EQ(col, cv.column_id);
        EXPECT_TRUE(vv.Equals(cv.value));
      }
      ColumnId col;
      ValueView vv;
      EXPECT_FALSE(reader.Next(&col, &vv));
    }
    EXPECT_EQ(view->Materialize(), expected);
    EXPECT_EQ(*owned, expected);
  }
  EXPECT_EQ(view_offset, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewCodecFuzzTest,
                         ::testing::Values(7, 11, 19, 23, 31, 41));

TEST(ViewCodecTest, ViewBytesAliasInputBuffer) {
  LogRecord rec = LogRecord::Dml(LogRecordType::kUpdate, 1, 2, 3, 4, 5,
                                 {{0, Value("payload")}});
  std::string buf;
  LogCodec::Encode(rec, &buf);
  size_t offset = 0;
  auto view = LogCodec::DecodeView(buf, &offset);
  ASSERT_TRUE(view.ok());
  ASSERT_FALSE(view->value_bytes.empty());
  // Zero-copy: the view's slice must point into the encode buffer itself.
  EXPECT_GE(view->value_bytes.data(), buf.data());
  EXPECT_LE(view->value_bytes.data() + view->value_bytes.size(),
            buf.data() + buf.size());
}

TEST(ViewCodecTest, DetectsTruncationEverywhere) {
  LogRecord rec = LogRecord::Dml(
      LogRecordType::kInsert, 10, 20, 30, 1, 99,
      {{0, Value(int64_t{7})}, {1, Value("abc")}, {2, Value::Null()}});
  std::string buf;
  LogCodec::Encode(rec, &buf);
  // Every strict prefix must fail; none may crash or read past the end.
  for (size_t len = 0; len < buf.size(); ++len) {
    size_t offset = 0;
    auto view = LogCodec::DecodeView(std::string_view(buf.data(), len),
                                     &offset);
    EXPECT_FALSE(view.ok()) << "prefix of " << len << " bytes accepted";
  }
}

TEST(ViewCodecTest, DetectsBitFlips) {
  std::string buf;
  LogCodec::Encode(LogRecord::Dml(LogRecordType::kUpdate, 1, 2, 3, 4, 5,
                                  {{0, Value("hello")}, {3, Value(2.5)}}),
                   &buf);
  for (size_t i = 8; i < buf.size(); i += 5) {
    std::string corrupted = buf;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x10);
    size_t offset = 0;
    auto view = LogCodec::DecodeView(corrupted, &offset);
    EXPECT_FALSE(view.ok()) << "flip at " << i << " not detected";
    EXPECT_TRUE(view.status().IsCorruption());
  }
}

TEST(PackedDeltaTest, FromWireEqualsFromColumnValues) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    LogRecord rec = RandomDml(&rng, static_cast<int>(rng.UniformInt(0, 32)));
    std::string buf;
    LogCodec::Encode(rec, &buf);
    size_t offset = 0;
    auto view = LogCodec::DecodeView(buf, &offset);
    ASSERT_TRUE(view.ok());

    PackedDelta from_wire =
        PackedDelta::FromWire(view->num_values, view->value_bytes);
    PackedDelta from_values = PackedDelta::FromColumnValues(rec.values);
    EXPECT_EQ(from_wire, from_values);
    EXPECT_EQ(from_wire.count(), rec.values.size());
    EXPECT_EQ(from_wire.ToColumnValues(), rec.values);
    EXPECT_EQ(from_wire.Clone(), from_wire);
  }
}

TEST(PackedDeltaTest, EmptyDeltaAllocatesNothing) {
  PackedDelta empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0u);
  PackedDelta from_empty = PackedDelta::FromColumnValues({});
  EXPECT_TRUE(from_empty.empty());
  EXPECT_EQ(empty, from_empty);
  FlatRow row;
  empty.ApplyTo(&row);
  EXPECT_TRUE(row.empty());
}

TEST(PackedDeltaTest, ApplyToUpsertsInColumnOrder) {
  FlatRow row;
  PackedDelta::FromColumnValues(
      {{5, Value("five")}, {1, Value(int64_t{1})}, {5, Value("FIVE")}})
      .ApplyTo(&row);
  ASSERT_EQ(row.size(), 2u);
  // Later entries for the same column win; iteration is column-sorted.
  EXPECT_EQ(row.at(1).as_int64(), 1);
  EXPECT_EQ(row.at(5).as_string(), "FIVE");
  auto it = row.begin();
  EXPECT_EQ(it->first, 1u);
  EXPECT_EQ((++it)->first, 5u);
}

// GC fold: after TruncateBefore the base version carries one PackedDelta
// equal to the fold of every truncated delta, and reads above the watermark
// are byte-identical to the untruncated chain.
TEST(PackedDeltaTest, TruncateBeforeFoldsPackedDeltas) {
  Rng rng(1234);
  MemNode node(1);
  MemNode reference(1);
  Timestamp ts = 0;
  for (int i = 0; i < 40; ++i) {
    ts += 1 + static_cast<Timestamp>(rng.UniformInt(0, 3));
    std::vector<ColumnValue> delta;
    int n = static_cast<int>(rng.UniformInt(1, 5));
    for (int c = 0; c < n; ++c) {
      delta.push_back(
          {static_cast<ColumnId>(rng.UniformInt(0, 10)), RandomValue(&rng)});
    }
    for (MemNode* target : {&node, &reference}) {
      VersionCell cell;
      cell.commit_ts = ts;
      cell.txn_id = static_cast<TxnId>(i + 1);
      cell.delta = PackedDelta::FromColumnValues(delta);
      target->AppendVersion(std::move(cell));
    }
  }
  Timestamp watermark = ts / 2;
  node.TruncateBefore(watermark);
  for (Timestamp probe = watermark; probe <= ts + 1; ++probe) {
    auto got = node.ReadVisible(probe);
    auto want = reference.ReadVisible(probe);
    ASSERT_EQ(got.has_value(), want.has_value()) << "ts " << probe;
    if (got.has_value()) {
      EXPECT_EQ(*got, *want) << "ts " << probe;
    }
  }
}

}  // namespace
}  // namespace aets
