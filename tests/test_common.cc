// Unit tests for the common substrate: Status/Result, clocks, RNG, latches,
// queues, thread pool, and histograms.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "aets/common/clock.h"
#include "aets/common/histogram.h"
#include "aets/common/queue.h"
#include "aets/common/result.h"
#include "aets/common/rng.h"
#include "aets/common/spin_latch.h"
#include "aets/common/status.h"
#include "aets/common/thread_pool.h"

namespace aets {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing row");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing row");
  EXPECT_EQ(st.ToString(), "NotFound: missing row");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::Corruption("bad crc");
  Status copy = st;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_TRUE(st.IsCorruption());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsCorruption());
  moved = copy;
  EXPECT_EQ(moved.message(), "bad crc");
}

TEST(StatusTest, AllCodesRoundTripNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(LogicalClockTest, StrictlyIncreasing) {
  LogicalClock clock;
  Timestamp a = clock.Tick();
  Timestamp b = clock.Tick();
  EXPECT_LT(a, b);
  EXPECT_EQ(clock.Now(), b);
}

TEST(LogicalClockTest, AdvanceTo) {
  LogicalClock clock;
  clock.AdvanceTo(100);
  EXPECT_GT(clock.Tick(), 100u);
  clock.AdvanceTo(50);  // never goes backwards
  EXPECT_GT(clock.Tick(), 100u);
}

TEST(LogicalClockTest, ConcurrentTicksAreUnique) {
  LogicalClock clock;
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) seen[t].push_back(clock.Tick());
    });
  }
  for (auto& th : threads) th.join();
  std::set<Timestamp> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, NuRandWithinBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NuRand(1023, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(RngTest, AlphaStringLengths) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.AlphaString(4, 9);
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 9u);
  }
}

TEST(ZipfianTest, BoundsAndSkew) {
  ZipfianGenerator zipf(1000, 0.99, 1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 should dominate the tail decisively under theta=0.99.
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(SpinLatchTest, MutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinGuard guard(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLatchTest, TryLock) {
  SpinLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.Pop().value(), i);
}

TEST(BlockingQueueTest, CloseDrainsRemaining) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedCapacityBlocksTryPush) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, ProducerConsumer) {
  BlockingQueue<int> q(8);
  constexpr int kItems = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  int64_t sum = 0, count = 0;
  while (auto v = q.Pop()) {
    sum += *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems - 1) / 2);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

// Occupies the single worker of `pool` (blocking on `gate`, already held by
// the caller) and fills the one queue slot, so the queue is deterministically
// full when this returns. The started-flag handshake closes the race where
// the worker has not yet dequeued the blocker and would free the slot
// mid-test.
void SaturateSingleSlotPool(ThreadPool* pool, std::mutex* gate) {
  std::atomic<bool> started{false};
  ASSERT_TRUE(pool->Submit([gate, &started] {
    started.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> hold(*gate);
  }));
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(pool->TrySubmit([] {}));  // the worker is busy: fills the slot
}

TEST(ThreadPoolTest, TrySubmitFailsOnFullQueue) {
  ThreadPool pool(1, /*max_queue=*/1);
  std::mutex gate;
  gate.lock();
  SaturateSingleSlotPool(&pool, &gate);
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.TrySubmit([&] { ran.store(true); }));
  gate.unlock();
  pool.WaitIdle();
  EXPECT_FALSE(ran.load());  // a rejected task must never run
}

TEST(ThreadPoolTest, SubmitBlocksUntilSpaceFrees) {
  ThreadPool pool(1, /*max_queue=*/1);
  std::mutex gate;
  gate.lock();
  SaturateSingleSlotPool(&pool, &gate);
  // This Submit has no free slot: it must block, then succeed once the gated
  // task finishes. Ordering (not timing) is the assertion: the submitter
  // thread can only observe `accepted == true` after the gate opens.
  std::atomic<bool> accepted{false};
  std::thread submitter([&] {
    accepted.store(pool.Submit([] {}), std::memory_order_release);
  });
  // The queue stays full until the gate opens, so the submitter must register
  // a backpressure stall; waiting for it here proves Submit actually blocked.
  while (pool.submit_stalls() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(accepted.load());
  gate.unlock();
  submitter.join();
  EXPECT_TRUE(accepted.load());
  pool.WaitIdle();
}

TEST(ThreadPoolTest, SubmitForTimesOutOnFullQueue) {
  ThreadPool pool(1, /*max_queue=*/1);
  std::mutex gate;
  gate.lock();
  SaturateSingleSlotPool(&pool, &gate);
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.SubmitFor([&] { ran.store(true); }, /*timeout_us=*/2'000));
  gate.unlock();
  pool.WaitIdle();
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedNoOp) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 10);  // accepted tasks drained before stopping
  EXPECT_FALSE(pool.Submit([&] { counter.fetch_add(1); }));
  EXPECT_FALSE(pool.TrySubmit([&] { counter.fetch_add(1); }));
  EXPECT_FALSE(pool.SubmitFor([&] { counter.fetch_add(1); }, 1'000));
  pool.Shutdown();  // idempotent
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SubmitShutdownRaceNeverLosesAcceptedTasks) {
  // TSan-exercised: producers hammer Submit while another thread shuts the
  // pool down. Every accepted task must run exactly once; every rejected
  // task must never run. accepted == executed is the whole invariant.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3, /*max_queue=*/4);
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          if (pool.TrySubmit([&] { executed.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread killer([&] { pool.Shutdown(); });
    for (auto& t : producers) t.join();
    killer.join();
    pool.Shutdown();
    EXPECT_EQ(accepted.load(), executed.load());
  }
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(4, 64, [&](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.Percentile(50), 50, 15);  // bucketed approximation
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.Min(), 10);
  EXPECT_EQ(a.Max(), 1000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ZeroAndNegativeValuesLandInFirstBucket) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.Percentile(50), 1.0);
}

}  // namespace
}  // namespace aets
