// Experiment-harness tests: recorded logs, batch replay, catch-up runs, the
// replayer factory, and the table printer — the machinery every paper bench
// stands on.

#include <gtest/gtest.h>

#include "aets/bench/harness.h"
#include "aets/workload/tpcc.h"
#include "test_seed.h"

namespace aets {
namespace {

TpccConfig TinyTpcc() {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 40;
  config.customers_per_district = 5;
  config.init_orders_per_district = 1;
  return config;
}

TEST(HarnessTest, RecordWorkloadProducesOrderedEpochs) {
  TpccWorkload tpcc(TinyTpcc());
  RecordedLog log = RecordWorkload(&tpcc, /*num_txns=*/100, /*epoch_size=*/16,
                                   test::DeriveSeed(3));
  EXPECT_EQ(log.mix_txns, 100u);
  EXPECT_GT(log.load_txns, 0u);
  EXPECT_GT(log.final_ts, log.load_end_ts);
  EXPECT_FALSE(log.epochs.empty());
  EpochId expected = 0;
  uint64_t txns = 0;
  for (const auto& epoch : log.epochs) {
    EXPECT_EQ(epoch.epoch_id, expected++);
    EXPECT_FALSE(epoch.is_heartbeat());
    txns += epoch.num_txns;
  }
  EXPECT_EQ(txns, log.load_txns + log.mix_txns);
}

TEST(HarnessTest, ReplayRecordedMatchesForEveryKind) {
  TpccWorkload tpcc(TinyTpcc());
  RecordedLog log = RecordWorkload(&tpcc, 150, 32, 4);
  for (ReplayerKind kind :
       {ReplayerKind::kAets, ReplayerKind::kAetsNoTwoStage,
        ReplayerKind::kAetsNoac, ReplayerKind::kAetsSingleCommit,
        ReplayerKind::kTplr, ReplayerKind::kAtr, ReplayerKind::kC5,
        ReplayerKind::kSerial}) {
    ReplayerSpec spec;
    spec.kind = kind;
    spec.threads = 2;
    spec.grouping = GroupingMode::kStatic;
    spec.hot_groups = tpcc.DefaultHotGroups();
    BatchReplayResult r = ReplayRecorded(log, &tpcc.catalog(), spec);
    EXPECT_TRUE(r.state_matches_primary) << KindName(kind);
    EXPECT_GT(r.txns_per_sec, 0.0) << KindName(kind);
    EXPECT_GT(r.wall_us, 0) << KindName(kind);
    EXPECT_NEAR(r.dispatch_frac + r.replay_frac + r.commit_frac, 1.0, 1e-9)
        << KindName(kind);
  }
}

TEST(HarnessTest, KindNamesAreDistinct) {
  EXPECT_EQ(KindName(ReplayerKind::kAets), "AETS");
  EXPECT_EQ(KindName(ReplayerKind::kTplr), "TPLR");
  EXPECT_EQ(KindName(ReplayerKind::kAtr), "ATR");
  EXPECT_EQ(KindName(ReplayerKind::kC5), "C5");
  EXPECT_EQ(KindName(ReplayerKind::kSerial), "Serial");
}

TEST(HarnessTest, TplrFactoryReportsItsName) {
  TpccWorkload tpcc(TinyTpcc());
  EpochChannel channel;
  ReplayerSpec spec;
  spec.kind = ReplayerKind::kTplr;
  auto replayer = MakeReplayer(spec, &tpcc.catalog(), &channel);
  EXPECT_EQ(replayer->name(), "TPLR");
  channel.Close();
}

TEST(HarnessTest, CatchUpRunRecordsDelays) {
  TpccWorkload tpcc(TinyTpcc());
  RecordedLog log = RecordWorkload(&tpcc, 200, 32, 5);
  ReplayerSpec spec;
  spec.kind = ReplayerKind::kAets;
  spec.threads = 2;
  spec.grouping = GroupingMode::kStatic;
  spec.hot_groups = tpcc.DefaultHotGroups();

  CatchUpOptions options;
  options.queries = 50;
  options.lead_txns = 32;
  CatchUpResult r = RunCatchUp(log, &tpcc, spec, options);
  EXPECT_TRUE(r.state_matches_primary);
  EXPECT_GE(r.mean_delay_us, 0.0);
  EXPECT_GE(r.p99_delay_us, r.p50_delay_us);
  EXPECT_GT(r.drain_wall_us, 0);
  EXPECT_EQ(r.per_query_mean_us.size(), tpcc.analytic_queries().size());
}

TEST(HarnessTest, CatchUpOnDelayCallbackFires) {
  TpccWorkload tpcc(TinyTpcc());
  RecordedLog log = RecordWorkload(&tpcc, 100, 16, 6);
  ReplayerSpec spec;
  spec.kind = ReplayerKind::kAtr;
  spec.threads = 1;
  CatchUpOptions options;
  options.queries = 20;
  std::atomic<uint64_t> calls{0};
  options.on_delay = [&](uint64_t index, int64_t delay) {
    EXPECT_LT(index, 20u);
    EXPECT_GE(delay, 0);
    calls.fetch_add(1);
  };
  (void)RunCatchUp(log, &tpcc, spec, options);
  EXPECT_EQ(calls.load(), 20u);
}

TEST(HarnessTest, ScaledRespectsFloor) {
  // Without AETS_BENCH_SCALE set, Scaled is the identity with a floor.
  EXPECT_EQ(Scaled(100, 10), 100u);
  EXPECT_GE(Scaled(0, 5), 5u);
}

TEST(HarnessTest, LiveRunEndToEnd) {
  ReplayerSpec spec;
  spec.kind = ReplayerKind::kAets;
  spec.threads = 2;
  spec.grouping = GroupingMode::kStatic;
  TpccConfig config = TinyTpcc();
  spec.hot_groups = TpccWorkload(config).DefaultHotGroups();

  LiveRunOptions options;
  options.oltp_txns = 150;
  options.olap_queries = 30;
  options.epoch_size = 32;
  options.heartbeat_interval_us = 2'000;
  LiveRunResult r = RunLive(
      [config]() -> std::unique_ptr<Workload> {
        return std::make_unique<TpccWorkload>(config);
      },
      spec, options);
  EXPECT_TRUE(r.state_matches_primary);
  EXPECT_EQ(r.queries, 30u);
}

}  // namespace
}  // namespace aets
