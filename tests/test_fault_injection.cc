// Epoch-loss recovery under a hostile link: FaultInjectingChannel
// determinism, duplicate/drop/reorder/corruption recovery through the
// shipper's retention buffer, send-failure accounting, and crash-restart
// resume through a checkpoint plus retention drain.
//
// This binary has its own main(): `--chaos_iters=N` (or AETS_CHAOS_ITERS)
// scales the chaos sweeps for the nightly high-iteration run; the default
// keeps the suite CI-fast.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "aets/baselines/atr_replayer.h"
#include "aets/baselines/c5_replayer.h"
#include "aets/baselines/serial_replayer.h"
#include "aets/baselines/tplr_replayer.h"
#include <filesystem>

#include "aets/obs/metrics.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/durable_source.h"
#include "aets/replication/fault_injection.h"
#include "aets/replication/log_shipper.h"
#include "aets/sim/reference_model.h"
#include "aets/storage/checkpoint.h"
#include "aets/storage/segment_store.h"
#include "test_seed.h"

static int g_chaos_iters = 2;

namespace aets {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  return catalog;
}

void RunRandomWorkload(PrimaryDb* db, int num_tables, int num_txns,
                       uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < num_txns; ++i) {
    PrimaryTxn txn = db->Begin();
    int writes = static_cast<int>(rng.UniformInt(1, 5));
    for (int w = 0; w < writes; ++w) {
      TableId table = static_cast<TableId>(rng.UniformInt(0, num_tables - 1));
      int64_t key = rng.UniformInt(0, 149);
      int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {
        txn.Insert(table, key,
                   {{0, Value(static_cast<int64_t>(i))},
                    {1, Value(rng.AlphaString(4, 12))}});
      } else if (kind < 9) {
        txn.Update(table, key, {{0, Value(static_cast<int64_t>(i * 10))}});
      } else {
        txn.Delete(table, key);
      }
    }
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
}

// One single-txn data epoch with the given id, for driving channels directly.
ShippedEpoch MakeDataEpoch(EpochId id, Timestamp ts) {
  Epoch epoch;
  epoch.epoch_id = id;
  TxnLog txn;
  txn.txn_id = static_cast<TxnId>(id + 1);
  txn.commit_ts = ts;
  txn.records = {LogRecord::Begin(1, txn.txn_id, ts),
                 LogRecord::Dml(LogRecordType::kInsert, 2, txn.txn_id, ts, 0,
                                static_cast<int64_t>(id),
                                {{0, Value(static_cast<int64_t>(id))}}),
                 LogRecord::Commit(3, txn.txn_id, ts)};
  epoch.txns.push_back(std::move(txn));
  return EncodeEpoch(epoch);
}

ReplayRecoveryOptions FastRecovery() {
  ReplayRecoveryOptions options;
  options.reorder_window_pauses = 256;
  options.max_retries = 16;
  options.max_pending = 4096;
  return options;
}

// ---------------------------------------------------------------------------
// FaultInjectingChannel behavior.

TEST(FaultChannelTest, SameSeedSameFaultSchedule) {
  FaultProfile profile;
  profile.drop = 0.2;
  profile.duplicate = 0.2;
  profile.reorder = 0.2;
  profile.corrupt = 0.2;
  profile.seed = test::DeriveSeed(7);

  auto run = [&profile]() {
    FaultInjectingChannel channel(profile, /*capacity=*/4096);
    for (EpochId id = 0; id < 64; ++id) {
      EXPECT_TRUE(channel.Send(MakeDataEpoch(id, id + 1)));
    }
    channel.Close();
    // The delivered sequence (ids + intact flags) is part of the schedule.
    std::vector<std::pair<EpochId, bool>> delivered;
    while (auto e = channel.TryReceive()) {
      delivered.emplace_back(e->epoch_id, e->PayloadIntact());
    }
    return std::make_tuple(channel.drops(), channel.duplicates(),
                           channel.reorders(), channel.corruptions(),
                           delivered);
  };

  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<0>(first) + std::get<1>(first) + std::get<2>(first) +
                std::get<3>(first),
            0u);
}

TEST(FaultChannelTest, DropIsSilentAtTheSender) {
  FaultProfile profile;
  profile.drop = 1.0;
  FaultInjectingChannel channel(profile);
  // A lossy wire gives no feedback: Send must still report success.
  EXPECT_TRUE(channel.Send(MakeDataEpoch(0, 1)));
  EXPECT_TRUE(channel.Send(MakeDataEpoch(1, 2)));
  EXPECT_EQ(channel.drops(), 2u);
  EXPECT_EQ(channel.PendingEpochs(), 0u);
  channel.Close();
  EXPECT_FALSE(channel.TryReceive().has_value());
}

TEST(FaultChannelTest, CorruptionKeepsDeclaredCrcSoReceiversDetectIt) {
  FaultProfile profile;
  profile.corrupt = 1.0;
  FaultInjectingChannel channel(profile);
  ShippedEpoch sent = MakeDataEpoch(0, 1);
  ASSERT_TRUE(sent.PayloadIntact());
  EXPECT_TRUE(channel.Send(sent));
  channel.Close();
  auto received = channel.TryReceive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload_crc, sent.payload_crc);
  EXPECT_FALSE(received->PayloadIntact());
  EXPECT_EQ(channel.corruptions(), 1u);
  // The sender's copy shares no bytes with the damaged one.
  EXPECT_TRUE(sent.PayloadIntact());
}

TEST(FaultChannelTest, ReorderSlotIsFlushedOnClose) {
  FaultProfile profile;
  profile.reorder = 1.0;
  FaultInjectingChannel channel(profile);
  EXPECT_TRUE(channel.Send(MakeDataEpoch(0, 1)));  // held back
  channel.Close();                                 // must not lose it
  auto received = channel.TryReceive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->epoch_id, 0u);
  EXPECT_FALSE(channel.TryReceive().has_value());
}

// ---------------------------------------------------------------------------
// Shipper-side accounting (the silent-drop bugfixes).

TEST(ShipperTest, StartHeartbeatsIsIdempotent) {
  LogShipper shipper(/*epoch_size=*/4);
  EpochChannel channel(0);
  shipper.AttachChannel(&channel);
  std::atomic<Timestamp> ts{10};
  auto source = [&ts]() -> Timestamp { return ts.fetch_add(1) + 1; };
  shipper.StartHeartbeats(source, /*interval_us=*/200);
  // Used to overwrite heartbeat_thread_ without joining -> std::terminate.
  shipper.StartHeartbeats(source, /*interval_us=*/200);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  shipper.Finish();
  EXPECT_GE(shipper.heartbeats_shipped(), 1u);
}

TEST(ShipperTest, ClosedChannelSendsAreCountedNotShipped) {
  // Channel outlives the shipper: ~LogShipper closes attached channels.
  EpochChannel channel(4);
  LogShipper shipper(/*epoch_size=*/1);
  shipper.AttachChannel(&channel);
  channel.Close();

  TxnLog txn;
  txn.txn_id = 1;
  txn.commit_ts = 1;
  txn.records = {LogRecord::Begin(1, 1, 1),
                 LogRecord::Dml(LogRecordType::kInsert, 2, 1, 1, 0, 1,
                                {{0, Value(int64_t{1})}}),
                 LogRecord::Commit(3, 1, 1)};
  shipper.OnCommit(std::move(txn));  // seals epoch 0, fan-out fails

  EXPECT_EQ(shipper.epochs_shipped(), 0u);
  EXPECT_EQ(shipper.send_failures(), 1u);
  EXPECT_EQ(shipper.epochs_dropped(), 1u);
  // The epoch is still retained: a late NACK can recover what the dead
  // channel never carried.
  EXPECT_TRUE(shipper.FetchEpoch(0).has_value());
  EXPECT_EQ(shipper.retransmits(), 1u);
}

// ---------------------------------------------------------------------------
// Recovery protocol, one fault class at a time.

TEST(RecoveryTest, DuplicatedEpochsAreSkippedWithoutError) {
  constexpr int kTables = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/8);
  FaultProfile profile;
  profile.duplicate = 1.0;  // every epoch arrives twice
  FaultInjectingChannel channel(profile, /*capacity=*/4096);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  SerialReplayer replayer(catalog.get(), &channel);
  ASSERT_TRUE(replayer.Start().ok());
  RunRandomWorkload(&db, kTables, 200, test::DeriveSeed(11));
  shipper.Finish();
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_GT(replayer.stats().duplicates_dropped.load(), 0u);
  EXPECT_GT(channel.duplicates(), 0u);
}

// Records the full epoch stream of a workload, so tests can replay it into a
// channel with surgical losses.
std::vector<ShippedEpoch> RecordWorkload(PrimaryDb* db, LogShipper* shipper,
                                         int num_tables, int num_txns,
                                         uint64_t seed) {
  EpochChannel recorder(0);
  shipper->AttachChannel(&recorder);
  RunRandomWorkload(db, num_tables, num_txns, seed);
  shipper->Finish();
  std::vector<ShippedEpoch> epochs;
  while (auto e = recorder.TryReceive()) epochs.push_back(std::move(*e));
  return epochs;
}

TEST(RecoveryTest, DroppedEpochIsRecoveredViaRetransmit) {
  constexpr int kTables = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16, /*retention_capacity=*/1024);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 400, test::DeriveSeed(21));
  ASSERT_GT(epochs.size(), 4u);

  // Drop epoch 2 on the floor; everything else arrives in order.
  EpochChannel channel(0);
  for (size_t i = 0; i < epochs.size(); ++i) {
    if (i != 2) {
      ASSERT_TRUE(channel.Send(epochs[i]));
    }
  }
  channel.Close();

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  AetsReplayer replayer(catalog.get(), &channel, options);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_GE(replayer.stats().epochs_retried.load(), 1u);
  EXPECT_GE(shipper.retransmits(), 1u);
}

TEST(RecoveryTest, TailLossIsRecoveredAfterChannelClose) {
  // The last epoch vanishes and nothing after it ever reveals the gap; the
  // final drain against the source's NextEpochId must still find it.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16, /*retention_capacity=*/1024);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 300, test::DeriveSeed(31));
  ASSERT_GT(epochs.size(), 2u);

  EpochChannel channel(0);
  for (size_t i = 0; i + 1 < epochs.size(); ++i) {
    ASSERT_TRUE(channel.Send(epochs[i]));
  }
  channel.Close();

  SerialReplayer replayer(catalog.get(), &channel);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_GE(replayer.stats().epochs_retried.load(), 1u);
}

TEST(RecoveryTest, CorruptedEpochIsRefetchedClean) {
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16, /*retention_capacity=*/1024);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 300, test::DeriveSeed(41));
  ASSERT_GT(epochs.size(), 3u);

  EpochChannel channel(0);
  for (size_t i = 0; i < epochs.size(); ++i) {
    ShippedEpoch e = epochs[i];
    if (i == 1) {
      auto damaged = std::make_shared<std::string>(*e.payload);
      (*damaged)[damaged->size() / 3] ^= 0x40;
      e.payload = std::move(damaged);
    }
    ASSERT_TRUE(channel.Send(std::move(e)));
  }
  channel.Close();

  SerialReplayer replayer(catalog.get(), &channel);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_GE(replayer.stats().corrupt_dropped.load(), 1u);
  EXPECT_GE(replayer.stats().epochs_retried.load(), 1u);
}

TEST(ShipperTest, ConservationProducedEqualsShippedPlusDropped) {
  // Every produced epoch is either shipped or dropped, exactly once; spills
  // are a disjoint dimension (where the epoch lives, not whether it made it
  // out) and must never leak into either count.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);

  std::string dir = TempPath("shipper_conservation_seg");
  std::filesystem::remove_all(dir);
  SegmentStoreOptions seg_options;
  seg_options.dir = dir;
  auto store = SegmentStore::Open(seg_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  LogShipper shipper(/*epoch_size=*/4, /*retention_capacity=*/3);
  shipper.AttachSegmentStore(store->get());
  EpochChannel channel(0);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  // Phase 1: live channel — everything ships; the tiny retention spills.
  RunRandomWorkload(&db, kTables, 120, test::DeriveSeed(55));
  shipper.FlushEpoch();
  shipper.ShipHeartbeat(db.AcquireHeartbeatTs());
  EXPECT_GT(shipper.epochs_spilled(), 0u);
  EXPECT_EQ(shipper.epochs_dropped(), 0u);
  EXPECT_EQ(shipper.epochs_produced(),
            shipper.epochs_shipped() + shipper.epochs_dropped());

  // Phase 2: the channel dies — epochs now count dropped, never shipped,
  // and still exactly once each even though every one of them also spills
  // through the retention buffer eventually.
  channel.Close();
  RunRandomWorkload(&db, kTables, 120, test::DeriveSeed(56));
  shipper.Finish();
  EXPECT_GT(shipper.epochs_dropped(), 0u);
  EXPECT_EQ(shipper.epochs_produced(),
            shipper.epochs_shipped() + shipper.epochs_dropped());
  EXPECT_EQ(shipper.spill_failures(), 0u);
  // Eager appends mean the durable log holds the full sequence regardless
  // of channel fate.
  EXPECT_EQ((*store)->next_epoch(), shipper.NextEpochId());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, EvictedEpochIsACleanTerminalError) {
  // The loss is older than the retention window and no durable tier is
  // attached: recovery must fail loudly (re-bootstrap guidance), never
  // silently skip.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/4, /*retention_capacity=*/2);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 200, test::DeriveSeed(51));
  ASSERT_GT(epochs.size(), 8u);

  EpochChannel channel(0);
  for (size_t i = 1; i < epochs.size(); ++i) {  // epoch 0 lost forever
    ASSERT_TRUE(channel.Send(epochs[i]));
  }
  channel.Close();

  SerialReplayer replayer(catalog.get(), &channel);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().IsCorruption()) << replayer.error().ToString();
  EXPECT_NE(replayer.error().ToString().find("evicted"), std::string::npos)
      << replayer.error().ToString();
}

TEST(RecoveryTest, NackBelowTruncationFloorIsBelowCheckpointNotLoss) {
  // The durable tier is attached but checkpoint-coordinated truncation has
  // already dropped the oldest segments. A NACK for an epoch below the
  // truncation floor must come back as BelowCheckpoint — the epoch is
  // covered by a checkpoint image, so the replayer should be told to
  // re-bootstrap, never misdiagnose Corruption or permanent loss.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);

  std::string dir = TempPath("below_ckpt_seg");
  std::filesystem::remove_all(dir);
  SegmentStoreOptions seg_options;
  seg_options.dir = dir;
  seg_options.segment_max_bytes = 1024;  // several sealed segments
  auto store = SegmentStore::Open(seg_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  LogShipper shipper(/*epoch_size=*/4, /*retention_capacity=*/2);
  shipper.AttachSegmentStore(store->get());
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 200, test::DeriveSeed(51));
  ASSERT_GT(epochs.size(), 8u);

  // Truncate under (simulated) checkpoint coverage: epoch 0 leaves the disk.
  ASSERT_TRUE((*store)->TruncateBelow((*store)->next_epoch()).ok());
  ASSERT_GT((*store)->first_epoch(), 0u);
  EXPECT_EQ(shipper.FloorEpochId(), (*store)->first_epoch());

  EpochChannel channel(0);
  for (size_t i = 1; i < epochs.size(); ++i) {  // epoch 0 NACKs a hole
    ASSERT_TRUE(channel.Send(epochs[i]));
  }
  channel.Close();

  SerialReplayer replayer(catalog.get(), &channel);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().IsBelowCheckpoint())
      << replayer.error().ToString();
  EXPECT_FALSE(replayer.error().IsCorruption());
  EXPECT_NE(replayer.error().ToString().find("truncation floor"),
            std::string::npos)
      << replayer.error().ToString();
  std::filesystem::remove_all(dir);
}

TEST(ShipperTest, ConservationHoldsWhenSpillsLandBelowTheFloor) {
  // Truncation must not bend the conservation ledger: an eviction whose
  // epoch is already below the durable log's floor is checkpoint-covered
  // (spills_below_floor), not a spill, and produced == shipped + dropped
  // stays intact through the whole episode.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);

  std::string dir = TempPath("conservation_truncated_seg");
  std::filesystem::remove_all(dir);
  SegmentStoreOptions seg_options;
  seg_options.dir = dir;
  seg_options.segment_max_bytes = 1024;
  auto store = SegmentStore::Open(seg_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  LogShipper shipper(/*epoch_size=*/4, /*retention_capacity=*/8);
  shipper.AttachSegmentStore(store->get());
  EpochChannel channel(0);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  // Phase 1: fill the retention window, then truncate everything sealed —
  // every epoch still retained in RAM now sits below the floor.
  RunRandomWorkload(&db, kTables, 150, test::DeriveSeed(57));
  shipper.FlushEpoch();
  ASSERT_TRUE((*store)->TruncateBelow((*store)->next_epoch()).ok());
  ASSERT_GT((*store)->first_epoch(), 0u);
  EXPECT_EQ(shipper.spills_below_floor(), 0u);

  // Phase 2: keep committing. Evictions of the pre-floor entries are
  // checkpoint-covered; later evictions (post-floor ids) spill normally.
  RunRandomWorkload(&db, kTables, 150, test::DeriveSeed(58));
  shipper.Finish();
  EXPECT_GT(shipper.spills_below_floor(), 0u);
  EXPECT_GT(shipper.epochs_spilled(), 0u);
  EXPECT_EQ(shipper.epochs_produced(),
            shipper.epochs_shipped() + shipper.epochs_dropped());
  EXPECT_EQ(shipper.spill_failures(), 0u);
  // The durable log still carries the uninterrupted tail from the floor.
  EXPECT_EQ((*store)->next_epoch(), shipper.NextEpochId());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, EvictedEpochIsServedFromDiskWithDurableTier) {
  // Same loss, but the durable tier is attached: eviction became a spill,
  // and the NACK for the long-evicted epoch is served by a disk fetch
  // instead of latching the terminal error.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);

  std::string dir = TempPath("evicted_from_disk_seg");
  std::filesystem::remove_all(dir);
  SegmentStoreOptions seg_options;
  seg_options.dir = dir;
  auto store = SegmentStore::Open(seg_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  LogShipper shipper(/*epoch_size=*/4, /*retention_capacity=*/2);
  shipper.AttachSegmentStore(store->get());
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 200, test::DeriveSeed(51));
  ASSERT_GT(epochs.size(), 8u);
  ASSERT_GT(shipper.epochs_spilled(), 0u);

  EpochChannel channel(0);
  for (size_t i = 1; i < epochs.size(); ++i) {  // epoch 0 never arrives
    ASSERT_TRUE(channel.Send(epochs[i]));
  }
  channel.Close();

  SerialReplayer replayer(catalog.get(), &channel);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_GT(shipper.retransmits(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, DiskFullDegradesToTheLegacyEvictionError) {
  // The durable tier is attached but the disk filled up immediately: every
  // append fails (spill_failures), epochs stay RAM-only, and eviction is
  // the legacy terminal loss again — degraded, not aborted.
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);

  std::string dir = TempPath("disk_full_seg");
  std::filesystem::remove_all(dir);
  SegmentStoreOptions seg_options;
  seg_options.dir = dir;
  seg_options.segment_max_bytes = 1024;
  seg_options.write_fault_hook = [](size_t) {
    return Status::Internal("injected: disk full");
  };
  auto store = SegmentStore::Open(seg_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  LogShipper shipper(/*epoch_size=*/4, /*retention_capacity=*/2);
  shipper.AttachSegmentStore(store->get());
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  auto epochs = RecordWorkload(&db, &shipper, kTables, 200, test::DeriveSeed(51));
  ASSERT_GT(epochs.size(), 8u);
  EXPECT_GT(shipper.spill_failures(), 0u);
  EXPECT_EQ(shipper.epochs_spilled(), 0u);  // nothing durable ever spilled
  EXPECT_TRUE((*store)->empty());
  // Conservation holds under full-disk degradation too.
  EXPECT_EQ(shipper.epochs_produced(),
            shipper.epochs_shipped() + shipper.epochs_dropped());

  EpochChannel channel(0);
  for (size_t i = 1; i < epochs.size(); ++i) {  // epoch 0 lost forever
    ASSERT_TRUE(channel.Send(epochs[i]));
  }
  channel.Close();

  SerialReplayer replayer(catalog.get(), &channel);
  replayer.SetEpochSource(&shipper);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().IsCorruption()) << replayer.error().ToString();
  EXPECT_NE(replayer.error().ToString().find("evicted"), std::string::npos)
      << replayer.error().ToString();
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, GapWithoutSourceStaysTerminal) {
  // Pre-recovery contract: no EpochSource attached means any gap latches.
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  EpochChannel channel(0);
  SerialReplayer replayer(catalog.get(), &channel);
  ASSERT_TRUE(replayer.Start().ok());
  channel.Send(MakeDataEpoch(0, 1));
  channel.Send(MakeDataEpoch(2, 3));  // gap at 1
  channel.Close();
  replayer.Stop();
  EXPECT_TRUE(replayer.error().IsCorruption());
}

// ---------------------------------------------------------------------------
// Crash-restart: checkpoint, miss epochs while down, resume through the
// shipper's retention buffer.

TEST(CrashRestartTest, ResumesFromCheckpointThroughRetention) {
  constexpr int kTables = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/16, /*retention_capacity=*/4096);
  EpochChannel channel1(0);
  shipper.AttachChannel(&channel1);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;

  // Phase 1: a live backup replays the first burst, then "crashes": its
  // channel dies, it checkpoints its last consistent state and goes away.
  std::string path = TempPath("ckpt_crash_restart");
  EpochId resume_epoch = 0;
  {
    AetsReplayer first(catalog.get(), &channel1, options);
    ASSERT_TRUE(first.Start().ok());
    RunRandomWorkload(&db, kTables, 300, test::DeriveSeed(61));
    channel1.Close();
    first.Stop();
    ASSERT_TRUE(first.error().ok()) << first.error().ToString();
    ASSERT_TRUE(first.WriteCheckpoint(path).ok());
    resume_epoch = first.next_expected_epoch();
    ASSERT_GT(resume_epoch, 0u);
  }

  // Phase 2: the primary keeps committing while the backup is down. Sends
  // hit the dead channel and are counted dropped — but stay retained.
  RunRandomWorkload(&db, kTables, 300, test::DeriveSeed(62));
  shipper.Finish();
  EXPECT_GT(shipper.epochs_dropped(), 0u);
  EXPECT_GT(shipper.send_failures(), 0u);

  // Phase 3: restart. Bootstrap from the checkpoint, attach the retention
  // source, and drain everything missed while down.
  EpochChannel channel2(0);
  channel2.Close();
  AetsReplayer resumed(catalog.get(), &channel2, options);
  ASSERT_TRUE(resumed.Bootstrap(path).ok());
  EXPECT_EQ(resumed.next_expected_epoch(), resume_epoch);
  resumed.SetEpochSource(&shipper);
  resumed.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(resumed.Start().ok());
  resumed.Stop();

  EXPECT_TRUE(resumed.error().ok()) << resumed.error().ToString();
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(resumed.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_EQ(resumed.GlobalVisibleTs(), final_ts);
  EXPECT_GT(resumed.stats().epochs_retried.load(), 0u);
  EXPECT_GT(shipper.retransmits(), 0u);
  std::remove(path.c_str());
}

TEST(CrashRestartTest, DurableRecoveryFromSegmentTailIsExact) {
  // The full restart path (DESIGN.md §10): checkpoint into the segment
  // directory mid-run, lose the process, reopen the store, bootstrap from
  // the newest image, and replay the segment tail through the normal loop
  // via DurableEpochSource. The sim oracle's ReferenceModel then verifies
  // the recovered snapshot row for row, not just by digest.
  constexpr int kTables = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);

  std::string dir = TempPath("durable_crash_restart_seg");
  std::filesystem::remove_all(dir);
  SegmentStoreOptions seg_options;
  seg_options.dir = dir;
  seg_options.segment_max_bytes = 16 << 10;  // force a few rollovers

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;

  // Phase 1: live replication with the durable tier attached. The backup
  // checkpoints into the segment directory, then the process "dies" — the
  // primary keeps committing into the durable log with no one listening.
  {
    auto store = SegmentStore::Open(seg_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    LogShipper shipper(/*epoch_size=*/8, /*retention_capacity=*/4);
    shipper.AttachSegmentStore(store->get());
    EpochChannel channel(0);
    shipper.AttachChannel(&channel);
    db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

    AetsReplayer live(catalog.get(), &channel, options);
    ASSERT_TRUE(live.Start().ok());
    RunRandomWorkload(&db, kTables, 300, test::DeriveSeed(71));
    shipper.FlushEpoch();
    while (live.error().ok() &&
           live.GlobalVisibleTs() < db.last_commit_ts()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ASSERT_TRUE(live.error().ok()) << live.error().ToString();
    ASSERT_TRUE(live.WriteLiveCheckpoint(
                        CheckpointPathFor(dir, live.next_expected_epoch()))
                    .ok());

    // More commits after the checkpoint: this is the tail recovery must
    // replay from the segments. The backup is gone (channel closed).
    channel.Close();
    live.Stop();
    RunRandomWorkload(&db, kTables, 300, test::DeriveSeed(72));
    shipper.Finish();
    EXPECT_GT(shipper.epochs_dropped(), 0u);
    EXPECT_EQ(shipper.epochs_produced(),
              shipper.epochs_shipped() + shipper.epochs_dropped());
  }

  // Phase 2: restart from disk alone.
  auto reopened = SegmentStore::Open(seg_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  DurableEpochSource source(reopened->get());

  auto checkpoints = ListCheckpointFiles(dir);
  ASSERT_EQ(checkpoints.size(), 1u);
  EpochChannel closed(0);
  closed.Close();
  AetsReplayer recovered(catalog.get(), &closed, options);
  ASSERT_TRUE(recovered.Bootstrap(checkpoints.front()).ok());
  EpochId bootstrapped_at = recovered.next_expected_epoch();
  ASSERT_GT(bootstrapped_at, 0u);
  ASSERT_LT(bootstrapped_at, (*reopened)->next_epoch());  // a real tail
  recovered.SetEpochSource(&source);
  recovered.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(recovered.Start().ok());
  recovered.Stop();
  ASSERT_TRUE(recovered.error().ok()) << recovered.error().ToString();

  // Digest equality with the primary at its final commit...
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(recovered.GlobalVisibleTs(), final_ts);
  EXPECT_EQ(recovered.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));

  // ...and the oracle's exactness probe: rebuild the reference history from
  // the durable log and compare row for row.
  sim::ReferenceModel model(kTables);
  for (EpochId id = 0; id < (*reopened)->next_epoch(); ++id) {
    auto epoch = (*reopened)->Read(id);
    ASSERT_TRUE(epoch.has_value()) << id;
    ASSERT_TRUE(model.Apply(*epoch).ok());
  }
  Status exact = model.ExpectStoreExact(*recovered.store(), final_ts);
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Chaos acceptance: every replayer, all fault classes at once, fixed seeds.

struct ChaosReplayerSpec {
  const char* label;
  std::function<std::unique_ptr<Replayer>(const Catalog*, EpochChannel*)>
      make;
};

// Cross-epoch pipeline depth (DESIGN.md §9) for every chaos replayer;
// AETS_PIPELINE_DEPTH overrides the default so CI can sweep depths without
// a rebuild.
int ChaosPipelineDepth() {
  if (const char* env = std::getenv("AETS_PIPELINE_DEPTH")) {
    int depth = std::atoi(env);
    if (depth >= 1) return depth;
  }
  return 2;
}

std::vector<ChaosReplayerSpec> ChaosReplayerSpecs(int num_tables) {
  std::vector<double> rates(static_cast<size_t>(num_tables), 0.0);
  for (int t = 0; t < num_tables / 2; ++t) {
    rates[static_cast<size_t>(t)] = 10.0 * (t + 1) * (t + 1);
  }
  const int depth = ChaosPipelineDepth();
  std::vector<ChaosReplayerSpec> specs;
  specs.push_back({"aets-per-table",
                   [rates, depth](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o;
                     o.replay_threads = 3;
                     o.commit_threads = 2;
                     o.grouping = GroupingMode::kPerTable;
                     o.initial_rates = rates;
                     o.pipeline_depth = depth;
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"aets-by-rate",
                   [rates, depth](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o;
                     o.replay_threads = 3;
                     o.commit_threads = 2;
                     o.grouping = GroupingMode::kByAccessRate;
                     o.initial_rates = rates;
                     o.pipeline_depth = depth;
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"tplr", [depth](const Catalog* c, EpochChannel* ch) {
                     AetsOptions o = TplrBaselineOptions(/*replay_threads=*/3);
                     o.pipeline_depth = depth;
                     return std::make_unique<AetsReplayer>(c, ch, o);
                   }});
  specs.push_back({"atr", [depth](const Catalog* c, EpochChannel* ch) {
                     return std::make_unique<AtrReplayer>(
                         c, ch, AtrOptions{/*workers=*/3, depth});
                   }});
  specs.push_back({"c5", [depth](const Catalog* c, EpochChannel* ch) {
                     return std::make_unique<C5Replayer>(
                         c, ch,
                         C5Options{/*workers=*/3,
                                   /*watermark_period_us=*/500, depth});
                   }});
  specs.push_back({"serial", [depth](const Catalog* c, EpochChannel* ch) {
                     return std::make_unique<SerialReplayer>(c, ch, depth);
                   }});
  return specs;
}

TEST(ChaosTest, AllReplayersConvergeUnderChaos) {
  constexpr int kTables = 5;
  for (int round = 0; round < g_chaos_iters; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    obs::MetricsRegistry::Instance().ResetAll();

    std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
    LogicalClock clock;
    PrimaryDb db(catalog.get(), &clock);
    LogShipper shipper(/*epoch_size=*/8, /*retention_capacity=*/8192);
    db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

    // The acceptance profile: 5% drop, 5% duplicate, 1% corruption, plus a
    // dash of reordering. Seeds are fixed per (round, replayer), so a
    // failure reproduces exactly.
    FaultProfile profile;
    profile.drop = 0.05;
    profile.duplicate = 0.05;
    profile.corrupt = 0.01;
    profile.reorder = 0.03;

    auto specs = ChaosReplayerSpecs(kTables);
    std::vector<std::unique_ptr<FaultInjectingChannel>> channels;
    std::vector<std::unique_ptr<Replayer>> replayers;
    for (size_t i = 0; i < specs.size(); ++i) {
      FaultProfile p = profile;
      p.seed = test::DeriveSeed(1000u * static_cast<uint64_t>(round + 1) + i);
      channels.push_back(
          std::make_unique<FaultInjectingChannel>(p, /*capacity=*/4096));
      shipper.AttachChannel(channels.back().get());
      replayers.push_back(specs[i].make(catalog.get(), channels.back().get()));
      replayers.back()->SetEpochSource(&shipper);
      if (auto* base = dynamic_cast<ReplayerBase*>(replayers.back().get())) {
        base->SetRecoveryOptions(FastRecovery());
      }
    }
    for (auto& r : replayers) ASSERT_TRUE(r->Start().ok());

    RunRandomWorkload(&db, kTables, 600,
                      test::DeriveSeed(100u * static_cast<uint64_t>(round) + 9));
    shipper.Finish();
    for (auto& r : replayers) r->Stop();

    uint64_t faults = 0;
    for (auto& ch : channels) faults += ch->faults_injected();
    EXPECT_GT(faults, 0u);

    // Zero silent loss: every replayer is digest-equal to the primary.
    Timestamp final_ts = db.last_commit_ts();
    uint64_t expected = db.store().DigestAt(final_ts);
    size_t expected_rows = db.store().VisibleRowCount(final_ts);
    for (size_t i = 0; i < replayers.size(); ++i) {
      auto* base = dynamic_cast<ReplayerBase*>(replayers[i].get());
      ASSERT_NE(base, nullptr) << specs[i].label;
      EXPECT_TRUE(base->error().ok())
          << specs[i].label << ": " << base->error().ToString();
      EXPECT_EQ(replayers[i]->store()->DigestAt(final_ts), expected)
          << specs[i].label;
      EXPECT_EQ(replayers[i]->store()->VisibleRowCount(final_ts),
                expected_rows)
          << specs[i].label;
      EXPECT_EQ(replayers[i]->stats().txns.load(), 600u) << specs[i].label;
    }

    // The recovery machinery demonstrably ran.
    EXPECT_GT(shipper.retransmits(), 0u);
    obs::MetricsSnapshot snap = obs::MetricsRegistry::Instance().Snapshot();
    EXPECT_GT(snap.counters.at("shipper.retransmits"), 0u);
    EXPECT_GT(snap.counters.at("replay.epochs_duplicate_dropped"), 0u);
    EXPECT_GT(snap.counters.at("replay.epochs_retried"), 0u);

    // Conserved accounting with many consumers on one lane: retransmits and
    // link-level faults never leak into the produced/shipped/dropped books.
    EXPECT_EQ(shipper.epochs_produced(),
              shipper.epochs_shipped() + shipper.epochs_dropped());
    EXPECT_EQ(shipper.shard_produced(0),
              shipper.shard_shipped(0) + shipper.shard_dropped(0));
  }
}

TEST(ChaosTest, HeartbeatsSurviveChaos) {
  constexpr int kTables = 4;
  for (int round = 0; round < g_chaos_iters; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
    LogicalClock clock;
    PrimaryDb db(catalog.get(), &clock);
    LogShipper shipper(/*epoch_size=*/32, /*retention_capacity=*/8192);
    FaultProfile profile;
    profile.drop = 0.05;
    profile.duplicate = 0.05;
    profile.reorder = 0.03;
    profile.corrupt = 0.01;
    profile.seed = test::DeriveSeed(77u + static_cast<uint64_t>(round));
    FaultInjectingChannel channel(profile, /*capacity=*/4096);
    shipper.AttachChannel(&channel);
    db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
    shipper.StartHeartbeats([&db] { return db.AcquireHeartbeatTs(); },
                            /*interval_us=*/1'000);

    AetsOptions options;
    options.replay_threads = 2;
    options.grouping = GroupingMode::kPerTable;
    AetsReplayer replayer(catalog.get(), &channel, options);
    replayer.SetEpochSource(&shipper);
    replayer.SetRecoveryOptions(FastRecovery());
    ASSERT_TRUE(replayer.Start().ok());

    for (int burst = 0; burst < 3; ++burst) {
      RunRandomWorkload(&db, kTables, 100,
                        test::DeriveSeed(200u * static_cast<uint64_t>(round) + burst));
      // Idle gap: heartbeats (also subject to the faulty link) must keep
      // advancing visibility, with losses repaired through retention.
      Timestamp qts = clock.Now();
      EXPECT_GE(WaitVisible(replayer, {0, 1, 2, 3}, qts), 0);
    }
    shipper.Finish();
    replayer.Stop();

    EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
    Timestamp final_ts = db.last_commit_ts();
    EXPECT_EQ(replayer.store()->DigestAt(final_ts),
              db.store().DigestAt(final_ts));
    // Heartbeat epochs are produced/shipped through the same conserved books
    // as data epochs.
    EXPECT_EQ(shipper.epochs_produced(),
              shipper.epochs_shipped() + shipper.epochs_dropped());
  }
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  aets::test::InitSeedFromArgs(&argc, argv);
  aets::test::InstallSeedBanner();
  if (const char* env = std::getenv("AETS_CHAOS_ITERS")) {
    g_chaos_iters = std::max(1, std::atoi(env));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos_iters=";
    if (arg.rfind(prefix, 0) == 0) {
      g_chaos_iters = std::max(1, std::atoi(arg.c_str() + prefix.size()));
    }
  }
  return RUN_ALL_TESTS();
}
