// Shared test main: standard gtest startup plus the repo-wide seed protocol
// (`--seed=N` / AETS_TEST_SEED, seed printed on failure). Linked instead of
// GTest::gtest_main by every suite that does not need its own main.

#include <gtest/gtest.h>

#include "test_seed.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  aets::test::InitSeedFromArgs(&argc, argv);
  aets::test::InstallSeedBanner();
  return RUN_ALL_TESTS();
}
