// LogBuffer tests: append bookkeeping, per-table DML statistics, and the
// Table I hot-ratio computation.

#include <gtest/gtest.h>

#include "aets/log/log_buffer.h"

namespace aets {
namespace {

LogRecord Dml(TableId table, int64_t key) {
  return LogRecord::Dml(LogRecordType::kInsert, 1, 1, 1, table, key,
                        {{0, Value(int64_t{1})}});
}

TEST(LogBufferTest, AppendAndSnapshot) {
  LogBuffer buffer;
  buffer.Append(LogRecord::Begin(1, 1, 1));
  buffer.Append(Dml(0, 1));
  buffer.Append(LogRecord::Commit(3, 1, 1));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.At(0).type, LogRecordType::kBegin);
  EXPECT_EQ(buffer.At(1).table_id, 0u);
  auto snapshot = buffer.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[2].type, LogRecordType::kCommit);
}

TEST(LogBufferTest, OnlyDmlCounted) {
  LogBuffer buffer;
  buffer.Append(LogRecord::Begin(1, 1, 1));
  buffer.Append(Dml(0, 1));
  buffer.Append(Dml(0, 2));
  buffer.Append(Dml(2, 1));
  buffer.Append(LogRecord::Commit(5, 1, 1));
  buffer.Append(LogRecord::Heartbeat(6, 2, 2));
  EXPECT_EQ(buffer.TotalDmlCount(), 3u);
  auto counts = buffer.DmlCountsByTable();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts.count(1), 0u);
}

TEST(LogBufferTest, HotRatio) {
  LogBuffer buffer;
  for (int i = 0; i < 9; ++i) buffer.Append(Dml(0, i));
  buffer.Append(Dml(1, 0));
  EXPECT_DOUBLE_EQ(buffer.HotRatio({0}), 0.9);
  EXPECT_DOUBLE_EQ(buffer.HotRatio({1}), 0.1);
  EXPECT_DOUBLE_EQ(buffer.HotRatio({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(buffer.HotRatio({7}), 0.0);   // unknown table
  EXPECT_DOUBLE_EQ(buffer.HotRatio({}), 0.0);
}

TEST(LogBufferTest, HotRatioEmptyBuffer) {
  LogBuffer buffer;
  EXPECT_DOUBLE_EQ(buffer.HotRatio({0}), 0.0);
  EXPECT_EQ(buffer.TotalDmlCount(), 0u);
}

TEST(LogBufferTest, AppendAllMatchesLoop) {
  LogBuffer a, b;
  std::vector<LogRecord> records = {Dml(0, 1), Dml(1, 2), Dml(0, 3)};
  a.AppendAll(records);
  for (const auto& r : records) b.Append(r);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.DmlCountsByTable(), b.DmlCountsByTable());
}

}  // namespace
}  // namespace aets
