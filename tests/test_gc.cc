// MVCC garbage collection tests: version-chain truncation semantics, digest
// preservation above the watermark, the GC daemon, and GC interleaved with
// live replay.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "aets/baselines/serial_replayer.h"
#include "aets/common/rng.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/storage/gc_daemon.h"
#include "aets/storage/memtable.h"

namespace aets {
namespace {

VersionCell Cell(Timestamp ts, TxnId txn, std::vector<ColumnValue> delta,
                 bool is_delete = false) {
  VersionCell cell;
  cell.commit_ts = ts;
  cell.txn_id = txn;
  cell.is_delete = is_delete;
  cell.delta = PackedDelta::FromColumnValues(delta);
  return cell;
}

TEST(TruncateBeforeTest, FoldsPrefixIntoBase) {
  MemNode node(1);
  node.AppendVersion(Cell(10, 1, {{0, Value(int64_t{1})}, {1, Value("a")}}));
  node.AppendVersion(Cell(20, 2, {{1, Value("b")}}));
  node.AppendVersion(Cell(30, 3, {{0, Value(int64_t{3})}}));
  node.AppendVersion(Cell(40, 4, {{1, Value("d")}}));

  // Watermark 30: versions at 10 and 20 fold into the version at 30.
  EXPECT_EQ(node.TruncateBefore(30), 2u);
  EXPECT_EQ(node.NumVersions(), 2u);
  // Reads at/above the base are unchanged.
  Row at30 = *node.ReadVisible(30);
  EXPECT_EQ(at30.at(0).as_int64(), 3);
  EXPECT_EQ(at30.at(1).as_string(), "b");
  Row at45 = *node.ReadVisible(45);
  EXPECT_EQ(at45.at(1).as_string(), "d");
  // Appending after truncation keeps working.
  node.AppendVersion(Cell(50, 5, {{0, Value(int64_t{5})}}));
  EXPECT_EQ(node.ReadVisible(50)->at(0).as_int64(), 5);
}

TEST(TruncateBeforeTest, NothingToDoCases) {
  MemNode node(1);
  EXPECT_EQ(node.TruncateBefore(100), 0u);  // empty chain
  node.AppendVersion(Cell(10, 1, {{0, Value(int64_t{1})}}));
  EXPECT_EQ(node.TruncateBefore(5), 0u);   // watermark below everything
  EXPECT_EQ(node.TruncateBefore(10), 0u);  // single version is the base
  EXPECT_EQ(node.NumVersions(), 1u);
}

TEST(TruncateBeforeTest, TombstoneBaseIsPreserved) {
  MemNode node(1);
  node.AppendVersion(Cell(10, 1, {{0, Value(int64_t{1})}}));
  node.AppendVersion(Cell(20, 2, {}, /*is_delete=*/true));
  node.AppendVersion(Cell(30, 3, {{0, Value(int64_t{9})}}));
  EXPECT_EQ(node.TruncateBefore(20), 1u);
  EXPECT_FALSE(node.ReadVisible(25).has_value());  // tombstone base holds
  EXPECT_EQ(node.ReadVisible(35)->at(0).as_int64(), 9);
  // The pre-delete column must not resurface after folding.
  EXPECT_EQ(node.ReadVisible(35)->size(), 1u);
}

TEST(MemtableGcTest, DigestInvariantAboveWatermark) {
  Memtable a(0), b(0);
  Rng rng(5);
  Timestamp ts = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t key = rng.UniformInt(0, 50);
    LogRecord rec = LogRecord::Dml(
        rng.Bernoulli(0.1) ? LogRecordType::kDelete : LogRecordType::kUpdate,
        1, static_cast<TxnId>(i + 1), ++ts, 0, key,
        rng.Bernoulli(0.1) ? std::vector<ColumnValue>{}
                           : std::vector<ColumnValue>{
                                 {0, Value(rng.UniformInt(0, 1000))},
                                 {1, Value(rng.AlphaString(2, 10))}});
    if (rec.type == LogRecordType::kDelete) rec.values.clear();
    a.ApplyCommitted(rec, ts);
    b.ApplyCommitted(rec, ts);
  }
  Timestamp watermark = ts / 2;
  size_t reclaimed = b.GarbageCollect(watermark);
  EXPECT_GT(reclaimed, 0u);
  // Every snapshot at or above the watermark reads identically.
  for (Timestamp probe : {watermark, watermark + 7, ts}) {
    EXPECT_EQ(a.DigestAt(probe), b.DigestAt(probe)) << "probe " << probe;
  }
}

TEST(GcDaemonTest, ReclaimsBehindWatermark) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterTable("t", Schema::Of({{"v", ColumnType::kInt64}})).ok());
  TableStore store(catalog);
  Timestamp ts = 0;
  for (int i = 0; i < 500; ++i) {
    ++ts;
    store.GetTable(0)->ApplyCommitted(
        LogRecord::Dml(LogRecordType::kUpdate, 1, static_cast<TxnId>(i + 1),
                       ts, 0, /*row=*/i % 5,
                       {{0, Value(static_cast<int64_t>(i))}}),
        ts);
  }
  std::atomic<Timestamp> watermark{ts};
  GcDaemon daemon(&store, [&] { return watermark.load(); }, /*retention=*/10);
  size_t reclaimed = daemon.RunOnce();
  // 5 rows x 100 versions, all but the base + post-watermark tail fold away.
  EXPECT_GT(reclaimed, 400u);
  EXPECT_EQ(daemon.passes(), 1u);
  EXPECT_EQ(daemon.total_reclaimed(), reclaimed);
  EXPECT_EQ(store.GetTable(0)->VisibleRowCount(ts), 5u);
}

TEST(GcDaemonTest, BackgroundLoopRunsAndStops) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterTable("t", Schema::Of({{"v", ColumnType::kInt64}})).ok());
  TableStore store(catalog);
  std::atomic<Timestamp> watermark{100};
  GcDaemon daemon(&store, [&] { return watermark.load(); }, 0,
                  /*interval_us=*/500);
  daemon.Start();
  int waited = 0;
  while (daemon.passes() < 3 && waited++ < 2000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Stop();
  EXPECT_GE(daemon.passes(), 3u);
}

TEST(GcDaemonTest, ConcurrentWithLiveReplay) {
  // GC runs against the backup store while the AETS replayer is appending:
  // the final state must still match a GC-free serial oracle.
  Catalog catalog;
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(catalog
                    .RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"v", ColumnType::kInt64}}))
                    .ok());
  }
  LogicalClock clock;
  PrimaryDb db(&catalog, &clock);
  LogShipper shipper(/*epoch_size=*/8);
  EpochChannel aets_ch(1024), serial_ch(1024);
  shipper.AttachChannel(&aets_ch);
  shipper.AttachChannel(&serial_ch);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  AetsReplayer replayer(&catalog, &aets_ch, options);
  SerialReplayer oracle(&catalog, &serial_ch);
  ASSERT_TRUE(replayer.Start().ok());
  ASSERT_TRUE(oracle.Start().ok());

  GcDaemon daemon(
      replayer.store(), [&] { return replayer.GlobalVisibleTs(); },
      /*retention=*/50, /*interval_us=*/200);
  daemon.Start();

  Rng rng(9);
  for (int i = 0; i < 1500; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Update(static_cast<TableId>(rng.UniformInt(0, 2)),
               rng.UniformInt(0, 20), {{0, Value(static_cast<int64_t>(i))}});
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  shipper.Finish();
  replayer.Stop();
  oracle.Stop();
  daemon.Stop();

  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            oracle.store()->DigestAt(final_ts));
  EXPECT_GT(daemon.total_reclaimed(), 0u);
}

}  // namespace
}  // namespace aets
