# Empty dependencies file for bus_dashboard.
# This may be replaced when dependencies are built.
