file(REMOVE_RECURSE
  "CMakeFiles/bus_dashboard.dir/bus_dashboard.cpp.o"
  "CMakeFiles/bus_dashboard.dir/bus_dashboard.cpp.o.d"
  "bus_dashboard"
  "bus_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
