# Empty compiler generated dependencies file for replayer_faceoff.
# This may be replaced when dependencies are built.
