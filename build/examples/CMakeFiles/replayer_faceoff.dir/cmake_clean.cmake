file(REMOVE_RECURSE
  "CMakeFiles/replayer_faceoff.dir/replayer_faceoff.cpp.o"
  "CMakeFiles/replayer_faceoff.dir/replayer_faceoff.cpp.o.d"
  "replayer_faceoff"
  "replayer_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replayer_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
