file(REMOVE_RECURSE
  "CMakeFiles/test_solver.dir/test_solver.cc.o"
  "CMakeFiles/test_solver.dir/test_solver.cc.o.d"
  "test_solver"
  "test_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
