file(REMOVE_RECURSE
  "CMakeFiles/test_visibility.dir/test_visibility.cc.o"
  "CMakeFiles/test_visibility.dir/test_visibility.cc.o.d"
  "test_visibility"
  "test_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
