# Empty compiler generated dependencies file for test_visibility.
# This may be replaced when dependencies are built.
