# Empty compiler generated dependencies file for test_replayers.
# This may be replaced when dependencies are built.
