file(REMOVE_RECURSE
  "CMakeFiles/test_replayers.dir/test_replayers.cc.o"
  "CMakeFiles/test_replayers.dir/test_replayers.cc.o.d"
  "test_replayers"
  "test_replayers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replayers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
