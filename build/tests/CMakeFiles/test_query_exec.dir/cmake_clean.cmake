file(REMOVE_RECURSE
  "CMakeFiles/test_query_exec.dir/test_query_exec.cc.o"
  "CMakeFiles/test_query_exec.dir/test_query_exec.cc.o.d"
  "test_query_exec"
  "test_query_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
