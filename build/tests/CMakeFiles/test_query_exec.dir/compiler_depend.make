# Empty compiler generated dependencies file for test_query_exec.
# This may be replaced when dependencies are built.
