file(REMOVE_RECURSE
  "CMakeFiles/test_log_buffer.dir/test_log_buffer.cc.o"
  "CMakeFiles/test_log_buffer.dir/test_log_buffer.cc.o.d"
  "test_log_buffer"
  "test_log_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
