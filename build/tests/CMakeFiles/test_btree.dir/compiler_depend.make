# Empty compiler generated dependencies file for test_btree.
# This may be replaced when dependencies are built.
