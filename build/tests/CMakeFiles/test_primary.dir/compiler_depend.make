# Empty compiler generated dependencies file for test_primary.
# This may be replaced when dependencies are built.
