file(REMOVE_RECURSE
  "CMakeFiles/test_primary.dir/test_primary.cc.o"
  "CMakeFiles/test_primary.dir/test_primary.cc.o.d"
  "test_primary"
  "test_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
