file(REMOVE_RECURSE
  "libaets.a"
)
