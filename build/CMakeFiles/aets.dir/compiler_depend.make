# Empty compiler generated dependencies file for aets.
# This may be replaced when dependencies are built.
