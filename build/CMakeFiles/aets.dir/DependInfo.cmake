
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aets/baselines/atr_replayer.cc" "CMakeFiles/aets.dir/src/aets/baselines/atr_replayer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/baselines/atr_replayer.cc.o.d"
  "/root/repo/src/aets/baselines/c5_replayer.cc" "CMakeFiles/aets.dir/src/aets/baselines/c5_replayer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/baselines/c5_replayer.cc.o.d"
  "/root/repo/src/aets/baselines/serial_replayer.cc" "CMakeFiles/aets.dir/src/aets/baselines/serial_replayer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/baselines/serial_replayer.cc.o.d"
  "/root/repo/src/aets/baselines/tplr_replayer.cc" "CMakeFiles/aets.dir/src/aets/baselines/tplr_replayer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/baselines/tplr_replayer.cc.o.d"
  "/root/repo/src/aets/bench/harness.cc" "CMakeFiles/aets.dir/src/aets/bench/harness.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/bench/harness.cc.o.d"
  "/root/repo/src/aets/catalog/catalog.cc" "CMakeFiles/aets.dir/src/aets/catalog/catalog.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/catalog/catalog.cc.o.d"
  "/root/repo/src/aets/catalog/schema.cc" "CMakeFiles/aets.dir/src/aets/catalog/schema.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/catalog/schema.cc.o.d"
  "/root/repo/src/aets/common/histogram.cc" "CMakeFiles/aets.dir/src/aets/common/histogram.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/common/histogram.cc.o.d"
  "/root/repo/src/aets/common/rng.cc" "CMakeFiles/aets.dir/src/aets/common/rng.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/common/rng.cc.o.d"
  "/root/repo/src/aets/common/status.cc" "CMakeFiles/aets.dir/src/aets/common/status.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/common/status.cc.o.d"
  "/root/repo/src/aets/common/thread_pool.cc" "CMakeFiles/aets.dir/src/aets/common/thread_pool.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/common/thread_pool.cc.o.d"
  "/root/repo/src/aets/log/codec.cc" "CMakeFiles/aets.dir/src/aets/log/codec.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/log/codec.cc.o.d"
  "/root/repo/src/aets/log/epoch.cc" "CMakeFiles/aets.dir/src/aets/log/epoch.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/log/epoch.cc.o.d"
  "/root/repo/src/aets/log/log_buffer.cc" "CMakeFiles/aets.dir/src/aets/log/log_buffer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/log/log_buffer.cc.o.d"
  "/root/repo/src/aets/log/record.cc" "CMakeFiles/aets.dir/src/aets/log/record.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/log/record.cc.o.d"
  "/root/repo/src/aets/log/shipped_epoch.cc" "CMakeFiles/aets.dir/src/aets/log/shipped_epoch.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/log/shipped_epoch.cc.o.d"
  "/root/repo/src/aets/predictor/classical.cc" "CMakeFiles/aets.dir/src/aets/predictor/classical.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/classical.cc.o.d"
  "/root/repo/src/aets/predictor/dbscan.cc" "CMakeFiles/aets.dir/src/aets/predictor/dbscan.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/dbscan.cc.o.d"
  "/root/repo/src/aets/predictor/dtgm.cc" "CMakeFiles/aets.dir/src/aets/predictor/dtgm.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/dtgm.cc.o.d"
  "/root/repo/src/aets/predictor/lstm.cc" "CMakeFiles/aets.dir/src/aets/predictor/lstm.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/lstm.cc.o.d"
  "/root/repo/src/aets/predictor/predictor.cc" "CMakeFiles/aets.dir/src/aets/predictor/predictor.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/predictor.cc.o.d"
  "/root/repo/src/aets/predictor/qb5000.cc" "CMakeFiles/aets.dir/src/aets/predictor/qb5000.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/qb5000.cc.o.d"
  "/root/repo/src/aets/predictor/solver.cc" "CMakeFiles/aets.dir/src/aets/predictor/solver.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/solver.cc.o.d"
  "/root/repo/src/aets/predictor/tensor.cc" "CMakeFiles/aets.dir/src/aets/predictor/tensor.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/predictor/tensor.cc.o.d"
  "/root/repo/src/aets/primary/primary_db.cc" "CMakeFiles/aets.dir/src/aets/primary/primary_db.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/primary/primary_db.cc.o.d"
  "/root/repo/src/aets/replay/access_tracker.cc" "CMakeFiles/aets.dir/src/aets/replay/access_tracker.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/replay/access_tracker.cc.o.d"
  "/root/repo/src/aets/replay/aets_replayer.cc" "CMakeFiles/aets.dir/src/aets/replay/aets_replayer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/replay/aets_replayer.cc.o.d"
  "/root/repo/src/aets/replay/replayer.cc" "CMakeFiles/aets.dir/src/aets/replay/replayer.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/replay/replayer.cc.o.d"
  "/root/repo/src/aets/replay/table_group.cc" "CMakeFiles/aets.dir/src/aets/replay/table_group.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/replay/table_group.cc.o.d"
  "/root/repo/src/aets/replay/thread_allocator.cc" "CMakeFiles/aets.dir/src/aets/replay/thread_allocator.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/replay/thread_allocator.cc.o.d"
  "/root/repo/src/aets/replication/log_shipper.cc" "CMakeFiles/aets.dir/src/aets/replication/log_shipper.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/replication/log_shipper.cc.o.d"
  "/root/repo/src/aets/storage/checkpoint.cc" "CMakeFiles/aets.dir/src/aets/storage/checkpoint.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/storage/checkpoint.cc.o.d"
  "/root/repo/src/aets/storage/gc_daemon.cc" "CMakeFiles/aets.dir/src/aets/storage/gc_daemon.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/storage/gc_daemon.cc.o.d"
  "/root/repo/src/aets/storage/memtable.cc" "CMakeFiles/aets.dir/src/aets/storage/memtable.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/storage/memtable.cc.o.d"
  "/root/repo/src/aets/storage/table_store.cc" "CMakeFiles/aets.dir/src/aets/storage/table_store.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/storage/table_store.cc.o.d"
  "/root/repo/src/aets/storage/value.cc" "CMakeFiles/aets.dir/src/aets/storage/value.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/storage/value.cc.o.d"
  "/root/repo/src/aets/storage/version_chain.cc" "CMakeFiles/aets.dir/src/aets/storage/version_chain.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/storage/version_chain.cc.o.d"
  "/root/repo/src/aets/workload/bustracker.cc" "CMakeFiles/aets.dir/src/aets/workload/bustracker.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/bustracker.cc.o.d"
  "/root/repo/src/aets/workload/chbenchmark.cc" "CMakeFiles/aets.dir/src/aets/workload/chbenchmark.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/chbenchmark.cc.o.d"
  "/root/repo/src/aets/workload/driver.cc" "CMakeFiles/aets.dir/src/aets/workload/driver.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/driver.cc.o.d"
  "/root/repo/src/aets/workload/query_exec.cc" "CMakeFiles/aets.dir/src/aets/workload/query_exec.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/query_exec.cc.o.d"
  "/root/repo/src/aets/workload/seats.cc" "CMakeFiles/aets.dir/src/aets/workload/seats.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/seats.cc.o.d"
  "/root/repo/src/aets/workload/tpcc.cc" "CMakeFiles/aets.dir/src/aets/workload/tpcc.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/tpcc.cc.o.d"
  "/root/repo/src/aets/workload/workload.cc" "CMakeFiles/aets.dir/src/aets/workload/workload.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/workload.cc.o.d"
  "/root/repo/src/aets/workload/workload_stats.cc" "CMakeFiles/aets.dir/src/aets/workload/workload_stats.cc.o" "gcc" "CMakeFiles/aets.dir/src/aets/workload/workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
