file(REMOVE_RECURSE
  "CMakeFiles/fig9_bustracker_comparison.dir/fig9_bustracker_comparison.cc.o"
  "CMakeFiles/fig9_bustracker_comparison.dir/fig9_bustracker_comparison.cc.o.d"
  "fig9_bustracker_comparison"
  "fig9_bustracker_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bustracker_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
