# Empty dependencies file for micro_replay.
# This may be replaced when dependencies are built.
