# Empty compiler generated dependencies file for fig13_adaptive_threads.
# This may be replaced when dependencies are built.
