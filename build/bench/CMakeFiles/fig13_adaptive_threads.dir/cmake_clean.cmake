file(REMOVE_RECURSE
  "CMakeFiles/fig13_adaptive_threads.dir/fig13_adaptive_threads.cc.o"
  "CMakeFiles/fig13_adaptive_threads.dir/fig13_adaptive_threads.cc.o.d"
  "fig13_adaptive_threads"
  "fig13_adaptive_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_adaptive_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
