# Empty dependencies file for table1_workload_ratio.
# This may be replaced when dependencies are built.
