# Empty compiler generated dependencies file for fig10_chbench_visibility.
# This may be replaced when dependencies are built.
