file(REMOVE_RECURSE
  "CMakeFiles/fig10_chbench_visibility.dir/fig10_chbench_visibility.cc.o"
  "CMakeFiles/fig10_chbench_visibility.dir/fig10_chbench_visibility.cc.o.d"
  "fig10_chbench_visibility"
  "fig10_chbench_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_chbench_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
