file(REMOVE_RECURSE
  "CMakeFiles/fig14_hidden_dim.dir/fig14_hidden_dim.cc.o"
  "CMakeFiles/fig14_hidden_dim.dir/fig14_hidden_dim.cc.o.d"
  "fig14_hidden_dim"
  "fig14_hidden_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hidden_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
