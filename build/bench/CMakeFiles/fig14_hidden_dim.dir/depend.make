# Empty dependencies file for fig14_hidden_dim.
# This may be replaced when dependencies are built.
