# Empty dependencies file for table3_dtgm_accuracy.
# This may be replaced when dependencies are built.
