file(REMOVE_RECURSE
  "CMakeFiles/table3_dtgm_accuracy.dir/table3_dtgm_accuracy.cc.o"
  "CMakeFiles/table3_dtgm_accuracy.dir/table3_dtgm_accuracy.cc.o.d"
  "table3_dtgm_accuracy"
  "table3_dtgm_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dtgm_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
