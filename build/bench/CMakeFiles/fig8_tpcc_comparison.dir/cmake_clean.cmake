file(REMOVE_RECURSE
  "CMakeFiles/fig8_tpcc_comparison.dir/fig8_tpcc_comparison.cc.o"
  "CMakeFiles/fig8_tpcc_comparison.dir/fig8_tpcc_comparison.cc.o.d"
  "fig8_tpcc_comparison"
  "fig8_tpcc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tpcc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
