// Two-process log shipping over real TCP: the net-integration gauntlet's
// driver (DESIGN.md §12, scripts/net_integration.sh).
//
// Four modes over one seeded, fully deterministic workload (heartbeats land
// at fixed txn indices, so commit timestamps depend only on --seed):
//
//   primary    Runs the workload through PrimaryDb -> LogShipper and serves
//              it on a TCP EpochStreamServer. Prints
//                  LISTENING <port>
//              once bound (the script reads this to learn the ephemeral
//              port), paces itself so a kill -9 of the backup lands
//              mid-stream, and after Finish prints
//                  FINAL <last_commit_ts> <digest>
//              then lingers --linger_ms serving NACK fetches so a restarted
//              backup can drain the retention buffer before the script
//              tears it down.
//
//   backup     Connects a subscriber + control pair to --connect, replays
//              through a SerialReplayer whose NACK source is the TCP
//              control connection, and serves snapshot queries on a
//              QueryServer (prints QUERY_LISTENING <port>). When the stream
//              ends cleanly it prints FINAL <watermark> <digest>; the
//              digest must equal the primary's (the watermark may sit at
//              the trailing heartbeat, past last_commit_ts — no commits
//              separate them, so the digests still agree). A backup that is
//              kill -9'd and restarted starts empty and recovers the whole
//              prefix by NACK against the primary's retention buffer.
//
//   client     Issues --scans snapshot scans against a backup's query port
//              and prints one QUERY line each — the script's check that the
//              analytic path answers while replay runs.
//
//   reference  The same workload with no network at all; prints the same
//              FINAL line. All three FINAL digests must be identical.
//
//   $ ./net_replay primary --listen_port 0 --seed 11
//   $ ./net_replay backup --connect 127.0.0.1:9xxx --query_port 0
//   $ ./net_replay client --connect 127.0.0.1:9yyy --scans 8

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "aets/baselines/serial_replayer.h"
#include "aets/net/epoch_stream.h"
#include "aets/net/query_server.h"
#include "aets/net/tcp_source.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/snapshot_coordinator.h"
#include "aets/replication/log_shipper.h"

using namespace aets;

namespace {

struct Config {
  std::string mode;
  std::string connect;     // host:port (backup: stream port; client: query)
  int listen_port = 0;     // primary stream port (0 = ephemeral)
  int query_port = 0;      // backup query port (0 = ephemeral)
  uint64_t seed = 1;
  int num_tables = 4;
  int num_txns = 12000;
  int epoch_size = 32;
  int batch = 50;        // txns per pacing step (primary)
  int pause_us = 2000;   // sleep per pacing step (primary)
  int hb_every = 500;    // heartbeat every N txns — fixed indices, so
                         // commit timestamps stay seed-deterministic
  size_t retention = 1u << 16;  // epochs; must cover a from-zero restart
  int linger_ms = 30000;        // primary: serve NACKs after FINAL this long
  int wait_ms = 120000;         // backup: bound on waiting for stream end
  int scans = 8;                // client mode
};

// Deterministic splitmix64 — the workload must replay identically in every
// process with the same seed.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

void FillCatalog(Catalog* catalog, int num_tables) {
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"count", ColumnType::kInt64},
                                               {"payload", ColumnType::kString}}))
                   .ok());
  }
}

void ApplyOneTxn(PrimaryDb* db, Rng* rng, int num_tables,
                 std::vector<std::set<int64_t>>* live, int64_t i) {
  PrimaryTxn txn = db->Begin();
  int ops = 1 + static_cast<int>(rng->Below(3));
  for (int o = 0; o < ops; ++o) {
    TableId t = static_cast<TableId>(rng->Below(num_tables));
    int64_t key = static_cast<int64_t>(rng->Below(150));
    uint64_t roll = rng->Below(100);
    auto& alive = (*live)[t];
    if (alive.count(key) == 0) {
      txn.Insert(t, key,
                 {{0, Value(i)}, {1, Value("ins-" + std::to_string(i))}});
      alive.insert(key);
    } else if (roll < 75) {
      txn.Update(t, key,
                 {{0, Value(i)}, {1, Value("upd-" + std::to_string(i))}});
    } else {
      txn.Delete(t, key);
      alive.erase(key);
    }
  }
  if (!db->Commit(std::move(txn)).ok()) {
    std::fprintf(stderr, "commit %lld failed\n", static_cast<long long>(i));
    std::exit(2);
  }
}

// The shared workload loop: primary (paced, networked) and reference
// (unpaced, no network) must emit the exact same epoch stream.
void RunWorkload(const Config& cfg, PrimaryDb* primary, LogShipper* shipper,
                 bool paced) {
  Rng rng{cfg.seed};
  std::vector<std::set<int64_t>> live(cfg.num_tables);
  for (int i = 1; i <= cfg.num_txns; ++i) {
    ApplyOneTxn(primary, &rng, cfg.num_tables, &live, i);
    if (i % cfg.hb_every == 0) {
      shipper->ShipHeartbeat(primary->AcquireHeartbeatTs());
    }
    if (paced && i % cfg.batch == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.pause_us));
    }
  }
  // The trailing heartbeat carries the watermark past the last commit, so
  // the backup's final snapshot covers the whole history.
  shipper->ShipHeartbeat(primary->AcquireHeartbeatTs());
  shipper->Finish();
}

bool SplitHostPort(const std::string& s, std::string* host, uint16_t* port) {
  size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) return false;
  *host = s.substr(0, colon);
  *port = static_cast<uint16_t>(std::atoi(s.c_str() + colon + 1));
  return *port != 0;
}

int PrimaryMode(const Config& cfg, bool networked) {
  Catalog catalog;
  FillCatalog(&catalog, cfg.num_tables);
  LogicalClock clock;
  PrimaryDb primary(&catalog, &clock);
  LogShipper shipper(cfg.epoch_size, cfg.retention);
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  net::EpochStreamServer server(&shipper);
  if (networked) {
    Status s = server.Start(static_cast<uint16_t>(cfg.listen_port));
    if (!s.ok()) {
      std::fprintf(stderr, "listen: %s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("LISTENING %u\n", server.port());
    std::fflush(stdout);
  }

  RunWorkload(cfg, &primary, &shipper, networked);
  Timestamp final_ts = primary.last_commit_ts();
  std::printf("FINAL %" PRIu64 " %016" PRIx64 "\n",
              static_cast<uint64_t>(final_ts),
              primary.store().DigestAt(final_ts));
  std::fflush(stdout);

  if (networked) {
    // The stream is finished but a (possibly restarted) backup may still be
    // draining the gap by NACK against the retention buffer — keep the
    // control plane alive until the script tears us down.
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.linger_ms));
    server.Stop();
  }
  return 0;
}

int BackupMode(const Config& cfg) {
  std::string host;
  uint16_t port = 0;
  if (!SplitHostPort(cfg.connect, &host, &port)) {
    std::fprintf(stderr, "--connect host:port required\n");
    return 2;
  }
  Catalog catalog;
  FillCatalog(&catalog, cfg.num_tables);

  EpochChannel sink(4096);
  net::EpochStreamClientOptions client_options;
  client_options.max_reconnects = 200;
  client_options.reconnect_backoff_ms = 20;
  net::EpochStreamClient client(host, port, /*shard=*/0, &sink,
                                client_options);
  net::TcpEpochSourceOptions source_options;
  source_options.io_timeout_ms = 5000;
  net::TcpEpochSource source(host, port, /*shard=*/0, source_options);
  Status s = client.Start();
  if (s.ok()) s = source.Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 2;
  }

  SerialReplayer replayer(&catalog, &sink);
  replayer.SetEpochSource(&source);
  ReplayRecoveryOptions recovery;
  recovery.reorder_window_pauses = 256;
  recovery.max_retries = 64;
  recovery.max_pending = 65536;
  replayer.SetRecoveryOptions(recovery);
  if (!replayer.Start().ok()) return 2;

  GlobalSnapshotCoordinator coordinator;
  coordinator.AttachShard([&] { return replayer.GlobalVisibleTs(); });
  net::QueryServer queries(&replayer, &coordinator);
  s = queries.Start(static_cast<uint16_t>(cfg.query_port));
  if (!s.ok()) {
    std::fprintf(stderr, "query listen: %s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("QUERY_LISTENING %u\n", queries.port());
  std::fflush(stdout);

  // The subscriber sees kStreamEnd only when the primary's shipper
  // finished; everything before that (resets, timeouts, a primary that is
  // still starting) is absorbed by reconnect + NACK.
  int64_t deadline = MonotonicMicros() + int64_t{cfg.wait_ms} * 1000;
  while (!client.clean_end() && MonotonicMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  bool clean = client.clean_end();
  replayer.Stop();
  client.Stop();
  queries.Stop();
  if (!clean) {
    std::fprintf(stderr, "stream did not end within %d ms\n", cfg.wait_ms);
    return 2;
  }
  if (!replayer.error().ok()) {
    std::fprintf(stderr, "replay error: %s\n",
                 replayer.error().ToString().c_str());
    return 2;
  }
  Timestamp watermark = replayer.GlobalVisibleTs();
  std::printf("FINAL %" PRIu64 " %016" PRIx64 " epochs=%" PRIu64
              " reconnects=%" PRIu64 "\n",
              static_cast<uint64_t>(watermark),
              replayer.store()->DigestAt(watermark), client.epochs_received(),
              client.reconnects());
  std::fflush(stdout);
  return 0;
}

int ClientMode(const Config& cfg) {
  std::string host;
  uint16_t port = 0;
  if (!SplitHostPort(cfg.connect, &host, &port)) {
    std::fprintf(stderr, "--connect host:port required\n");
    return 2;
  }
  for (int i = 0; i < cfg.scans; ++i) {
    // One connection per scan: exercises admission each time, and a kBusy
    // shed (connection gone) is retried on a fresh connection.
    Result<net::QueryClient> client = net::QueryClient::Connect(host, port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
      return 2;
    }
    TableId table = static_cast<TableId>(i % cfg.num_tables);
    Result<net::QueryClient::ScanResult> scan = client->Scan(table);
    if (!scan.ok()) {
      std::fprintf(stderr, "scan: %s\n", scan.status().ToString().c_str());
      return 2;
    }
    if (scan->busy) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --i;
      continue;
    }
    std::printf("QUERY table=%u ts=%" PRIu64 " rows=%" PRIu64
                " digest=%016" PRIx64 "\n",
                table, static_cast<uint64_t>(scan->pinned_ts), scan->row_count,
                scan->digest);
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s primary|backup|client|reference [--connect H:P] "
                 "[--listen_port P] [--query_port P] [--seed N] [--txns N] "
                 "[--tables N] [--epoch_size N] [--batch N] [--pause_us N] "
                 "[--hb_every N] [--retention N] [--linger_ms N] "
                 "[--wait_ms N] [--scans N]\n",
                 argv[0]);
    return 2;
  }
  cfg.mode = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "--connect") cfg.connect = val;
    else if (flag == "--listen_port") cfg.listen_port = std::atoi(val);
    else if (flag == "--query_port") cfg.query_port = std::atoi(val);
    else if (flag == "--seed") cfg.seed = std::strtoull(val, nullptr, 10);
    else if (flag == "--txns") cfg.num_txns = std::atoi(val);
    else if (flag == "--tables") cfg.num_tables = std::atoi(val);
    else if (flag == "--epoch_size") cfg.epoch_size = std::atoi(val);
    else if (flag == "--batch") cfg.batch = std::atoi(val);
    else if (flag == "--pause_us") cfg.pause_us = std::atoi(val);
    else if (flag == "--hb_every") cfg.hb_every = std::atoi(val);
    else if (flag == "--retention") cfg.retention = std::strtoull(val, nullptr, 10);
    else if (flag == "--linger_ms") cfg.linger_ms = std::atoi(val);
    else if (flag == "--wait_ms") cfg.wait_ms = std::atoi(val);
    else if (flag == "--scans") cfg.scans = std::atoi(val);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (cfg.mode == "primary") return PrimaryMode(cfg, /*networked=*/true);
  if (cfg.mode == "reference") return PrimaryMode(cfg, /*networked=*/false);
  if (cfg.mode == "backup") return BackupMode(cfg);
  if (cfg.mode == "client") return ClientMode(cfg);
  std::fprintf(stderr, "unknown mode %s\n", cfg.mode.c_str());
  return 2;
}
