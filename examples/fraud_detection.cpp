// Fraud detection on a live TPC-C payment stream — the paper's motivating
// scenario: a real-time model scores recent payments and needs maximum data
// freshness on a handful of hot tables, while bulky order traffic floods the
// log. AETS's two-stage replay keeps the fraud queries' tables (customer,
// history via the payment path) visible with low delay even though most log
// volume lands elsewhere.
//
//   $ ./fraud_detection

#include <cstdio>

#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/workload/driver.h"
#include "aets/workload/tpcc.h"

using namespace aets;

int main() {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 200;
  config.customers_per_district = 30;
  TpccWorkload tpcc(config);

  LogicalClock clock;
  PrimaryDb primary(&tpcc.catalog(), &clock);
  LogShipper shipper(/*epoch_size=*/128);
  EpochChannel channel;
  shipper.AttachChannel(&channel);
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(2024);
  std::printf("loading TPC-C (1 warehouse)...\n");
  tpcc.Load(&primary, &rng);
  shipper.StartHeartbeats([&primary] { return primary.AcquireHeartbeatTs(); });

  // The fraud model reads customer balances and payment history: make those
  // the first-class group; everything else is second-class.
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kStatic;
  options.static_hot_groups = {{tpcc.customer(), tpcc.history()}};
  options.initial_rates = std::vector<double>(tpcc.catalog().num_tables(), 0.0);
  options.initial_rates[tpcc.customer()] = 500;
  options.initial_rates[tpcc.history()] = 500;
  AetsReplayer backup(&tpcc.catalog(), &channel, options);
  if (!backup.Start().ok()) return 1;

  // OLTP in the background: payments (fraud-relevant) buried in order
  // traffic.
  OltpDriver oltp(&tpcc, &primary, 7);
  oltp.Start(/*num_txns=*/5000);

  // The fraud scorer: every few milliseconds, snapshot "now", wait for the
  // hot tables only, and scan recent balances for anomalies.
  Histogram freshness;
  int alerts = 0;
  for (int round = 0; round < 200; ++round) {
    Timestamp qts = clock.Now();
    freshness.Record(WaitVisible(backup, {tpcc.customer(), tpcc.history()}, qts));
    // "Model": flag customers whose balance fell below -4000.
    backup.store()->GetTable(tpcc.customer())
        ->ScanVisible(qts, [&](int64_t, const Row& row) {
          auto it = row.find(3);  // c_balance
          if (it != row.end() && it->second.is_double() &&
              it->second.as_double() < -4000.0) {
            ++alerts;
          }
          return true;
        });
  }

  oltp.Join();
  shipper.Finish();
  backup.Stop();

  std::printf("scored 200 rounds; %d balance alerts\n", alerts);
  std::printf("hot-table visibility wait per round: %s\n",
              freshness.Summary().c_str());
  std::printf("backup replayed %llu txns, state %s\n",
              static_cast<unsigned long long>(backup.stats().txns.load()),
              backup.store()->DigestAt(primary.last_commit_ts()) ==
                      primary.store().DigestAt(primary.last_commit_ts())
                  ? "== primary"
                  : "MISMATCH");
  return 0;
}
