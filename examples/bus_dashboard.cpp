// Real-time bus-arrival dashboard over the BusTracker workload — the
// adaptive side of AETS end to end: the access tracker observes which tables
// the dashboard queries hit, a DTGM model forecasts the next slot's table
// access rates, and the replayer regroups/reallocates threads from the
// forecast while device-log spam floods the replication stream.
//
//   $ ./bus_dashboard

#include <cstdio>

#include "aets/predictor/dtgm.h"
#include "aets/replay/access_tracker.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/workload/bustracker.h"
#include "aets/workload/driver.h"

using namespace aets;

int main() {
  BusTrackerConfig config;
  config.rows_per_table = 40;
  BusTrackerWorkload bus(config);

  LogicalClock clock;
  PrimaryDb primary(&bus.catalog(), &clock);
  LogShipper shipper(/*epoch_size=*/128);
  EpochChannel channel;
  shipper.AttachChannel(&channel);
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(99);
  std::printf("loading BusTracker (65 tables, 14 hot)...\n");
  bus.Load(&primary, &rng);
  shipper.StartHeartbeats([&primary] { return primary.AcquireHeartbeatTs(); });

  // Train DTGM offline on historical access rates (the tracker would supply
  // these in production; here the generator's history plays that role).
  std::printf("training DTGM on 100 slots of access-rate history...\n");
  RateMatrix history = bus.GenerateRateSeries(100, 0.1, 7);
  DtgmConfig dtgm_config;
  dtgm_config.input_window = 16;
  dtgm_config.hidden = 16;
  dtgm_config.layers = 2;
  dtgm_config.horizon = 1;
  dtgm_config.train_steps = 40;
  DtgmPredictor dtgm(dtgm_config);
  dtgm.Fit(history);

  // The replayer pulls its rates from the latest DTGM forecast.
  std::vector<double> forecast = history.back();
  std::mutex forecast_mu;
  AetsOptions options;
  options.replay_threads = 3;
  options.grouping = GroupingMode::kByAccessRate;
  options.initial_rates = forecast;
  options.rate_provider = [&] {
    std::lock_guard<std::mutex> lk(forecast_mu);
    return forecast;
  };
  AetsReplayer backup(&bus.catalog(), &channel, options);
  if (!backup.Start().ok()) return 1;

  AccessTracker tracker(bus.catalog().num_tables());
  Histogram freshness;

  // Four dashboard refresh cycles ("minutes"); OLTP runs throughout.
  for (int slot = 100; slot < 104; ++slot) {
    OltpDriver oltp(&bus, &primary, static_cast<uint64_t>(slot));
    oltp.Start(/*num_txns=*/1500);

    // Dashboard queries for this slot, mix following the diurnal phase.
    Rng qrng(static_cast<uint64_t>(slot));
    double phase = static_cast<double>(slot % config.rate_period_slots) /
                   config.rate_period_slots;
    for (int q = 0; q < 120; ++q) {
      size_t qi = bus.SampleQuery(&qrng, phase);
      const AnalyticQuery& query = bus.analytic_queries()[qi];
      Timestamp qts = clock.Now();
      freshness.Record(WaitVisible(backup, query.tables, qts));
      tracker.RecordQuery(query.tables);
      for (TableId t : query.tables) {
        (void)backup.store()->GetTable(t)->ReadRow(1, qts);
      }
    }
    oltp.Join();

    // Close the slot: feed the observed rates to DTGM, refresh the forecast.
    tracker.AdvanceSlot();
    history.push_back(tracker.LastSlot());
    {
      std::lock_guard<std::mutex> lk(forecast_mu);
      forecast = dtgm.Predict(
          RateMatrix(history.end() - 16, history.end()), 1)[0];
    }
    std::printf("slot %d done: %zu replay groups, freshness %s\n", slot,
                backup.groups().size(), freshness.Summary().c_str());
  }

  shipper.Finish();
  backup.Stop();
  std::printf("final state %s; %llu txns replayed\n",
              backup.store()->DigestAt(primary.last_commit_ts()) ==
                      primary.store().DigestAt(primary.last_commit_ts())
                  ? "== primary"
                  : "MISMATCH",
              static_cast<unsigned long long>(backup.stats().txns.load()));
  return 0;
}
