// metrics_dump: runs a miniature primary -> shipper -> AETS replayer
// pipeline and prints the full observability snapshot (counters, gauges,
// latency histograms, recent trace spans) as JSON on stdout — the quickest
// way to see what the aets::obs layer records, and a template for wiring a
// scraper to MetricsRegistry::Snapshot().
//
//   $ ./metrics_dump                # JSON on stdout
//   $ ./metrics_dump out.json      # ... or to a file

#include <cstdio>

#include "aets/obs/export.h"
#include "aets/obs/trace.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/storage/gc_daemon.h"

using namespace aets;

int main(int argc, char** argv) {
  Catalog catalog;
  TableId orders =
      catalog
          .RegisterTable("orders", Schema::Of({{"amount", ColumnType::kDouble},
                                               {"status", ColumnType::kString}}))
          .value();
  TableId audit =
      catalog
          .RegisterTable("audit_log", Schema::Of({{"event", ColumnType::kString}}))
          .value();

  LogicalClock clock;
  PrimaryDb primary(&catalog, &clock);
  LogShipper shipper(/*epoch_size=*/64);
  EpochChannel channel;
  shipper.AttachChannel(&channel);
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = {100.0, 0.0};
  AetsReplayer backup(&catalog, &channel, options);
  GcDaemon gc(backup.store(), [&backup] { return backup.GlobalVisibleTs(); });
  if (!backup.Start().ok()) return 1;
  gc.Start();

  // Generate enough traffic to populate every series: inserts then updates
  // (updates grow version chains, so GC has something to reclaim).
  for (int i = 1; i <= 2000; ++i) {
    PrimaryTxn txn = primary.Begin();
    int64_t key = (i % 500) + 1;
    txn.Insert(orders, key, {{0, Value(19.99 + i)}, {1, Value("placed")}});
    txn.Insert(audit, i, {{0, Value("order placed")}});
    if (!primary.Commit(std::move(txn)).ok()) return 1;
  }
  shipper.Finish();

  Timestamp qts = clock.Now();
  WaitVisible(backup, {orders}, qts);
  backup.Stop();
  gc.Stop();
  gc.RunOnce();  // one synchronous pass so the gc.* series are populated

  if (argc > 1) {
    Status st = obs::WriteMetricsJsonFile(argv[1]);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", argv[1]);
  } else {
    std::fputs(obs::MetricsToJson().c_str(), stdout);
  }
  return 0;
}
