// Replayer face-off: ships one identical CH-benCHmark log to four backup
// replayers (AETS, TPLR, ATR, C5) side by side, verifies every backup
// converges to the primary's exact state, and prints each algorithm's
// throughput and phase breakdown — a miniature of the paper's evaluation
// you can eyeball in seconds.
//
//   $ ./replayer_faceoff

#include <cstdio>

#include "aets/baselines/atr_replayer.h"
#include "aets/baselines/c5_replayer.h"
#include "aets/baselines/tplr_replayer.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/workload/chbenchmark.h"
#include "aets/workload/driver.h"

using namespace aets;

int main() {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 200;
  config.customers_per_district = 20;
  ChBenchmarkWorkload ch(config);

  LogicalClock clock;
  PrimaryDb primary(&ch.catalog(), &clock);
  LogShipper shipper(/*epoch_size=*/128);

  // Four backups, four channels: the shipper fans every epoch out to all.
  EpochChannel ch_aets, ch_tplr, ch_atr, ch_c5;
  for (EpochChannel* c : {&ch_aets, &ch_tplr, &ch_atr, &ch_c5}) {
    shipper.AttachChannel(c);
  }
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(1);
  std::printf("loading CH-benCHmark and running 3000 transactions...\n");
  ch.Load(&primary, &rng);

  std::vector<double> rates(ch.catalog().num_tables(), 0.0);
  for (const auto& q : ch.analytic_queries()) {
    for (TableId t : q.tables) rates[t] += 50;
  }
  AetsOptions aets_options;
  aets_options.replay_threads = 2;
  aets_options.grouping = GroupingMode::kPerTable;
  aets_options.initial_rates = rates;

  AetsReplayer aets(&ch.catalog(), &ch_aets, aets_options);
  auto tplr = MakeTplrReplayer(&ch.catalog(), &ch_tplr, 2);
  AtrReplayer atr(&ch.catalog(), &ch_atr, AtrOptions{2});
  C5Replayer c5(&ch.catalog(), &ch_c5, C5Options{2});
  std::vector<Replayer*> replayers = {&aets, tplr.get(), &atr, &c5};
  for (Replayer* r : replayers) {
    if (!r->Start().ok()) return 1;
  }

  OltpDriver oltp(&ch, &primary, 1);
  oltp.Run(3000);
  shipper.Finish();
  for (Replayer* r : replayers) r->Stop();

  Timestamp final_ts = primary.last_commit_ts();
  uint64_t truth = primary.store().DigestAt(final_ts);
  std::printf("\n%-6s %12s %10s %10s %10s %8s\n", "name", "txn/s", "dispatch",
              "replay", "commit", "state");
  for (Replayer* r : replayers) {
    const ReplayStats& s = r->stats();
    std::printf("%-6s %12.0f %9.1f%% %9.1f%% %9.1f%% %8s\n", r->name().c_str(),
                s.TxnsPerSec(), 100 * s.DispatchFraction(),
                100 * s.ReplayFraction(), 100 * s.CommitFraction(),
                r->store()->DigestAt(final_ts) == truth ? "ok" : "BAD");
  }

  // One analytic query against each backup, same snapshot.
  const AnalyticQuery& q3 = ch.analytic_queries()[2];  // customer/orders/...
  std::printf("\nQ3 snapshot reads at ts=%llu:\n",
              static_cast<unsigned long long>(final_ts));
  for (Replayer* r : replayers) {
    int64_t wait = WaitVisible(*r, q3.tables, final_ts);
    size_t rows = r->store()->GetTable(ch.tpcc().orders())->VisibleRowCount(final_ts);
    std::printf("  %-6s waited %lld us, sees %zu orders\n", r->name().c_str(),
                static_cast<long long>(wait), rows);
  }
  return 0;
}
