// Quickstart: the smallest complete AETS pipeline.
//
// Builds a two-table database, streams transactions from a primary through
// the epoch-based log shipper into an AETS replayer on the "backup", and
// runs a real-time query that waits for its snapshot per the visibility rule
// (paper Algorithm 3).
//
//   $ ./quickstart

#include <cstdio>

#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"

using namespace aets;

int main() {
  // 1. Schema: an orders table (hot: the dashboard reads it constantly) and
  //    an audit log (cold: written often, queried never).
  Catalog catalog;
  TableId orders =
      catalog
          .RegisterTable("orders", Schema::Of({{"amount", ColumnType::kDouble},
                                               {"status", ColumnType::kString}}))
          .value();
  TableId audit =
      catalog
          .RegisterTable("audit_log", Schema::Of({{"event", ColumnType::kString}}))
          .value();

  // 2. Primary + replication: committed transactions are batched into
  //    epochs of 64 and shipped to the backup channel.
  LogicalClock clock;
  PrimaryDb primary(&catalog, &clock);
  LogShipper shipper(/*epoch_size=*/64);
  EpochChannel channel;
  shipper.AttachChannel(&channel);
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  // 3. The backup: an AETS replayer with per-table groups. `orders` is hot
  //    (access rate 100), so its log entries replay in stage one.
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = {100.0, 0.0};
  AetsReplayer backup(&catalog, &channel, options);
  if (!backup.Start().ok()) return 1;

  // 4. OLTP: place orders and spam the audit log.
  for (int i = 1; i <= 1000; ++i) {
    PrimaryTxn txn = primary.Begin();
    txn.Insert(orders, i, {{0, Value(19.99 + i)}, {1, Value("placed")}});
    txn.Insert(audit, i, {{0, Value("order placed")}});
    if (!primary.Commit(std::move(txn)).ok()) return 1;
  }
  shipper.Finish();  // flush the final partial epoch and close the channel

  // 5. A real-time analytic query: snapshot "now", wait until the backup
  //    has replayed everything the query needs (Algorithm 3), then read.
  Timestamp qts = clock.Now();
  int64_t waited_us = WaitVisible(backup, {orders}, qts);
  auto row = backup.store()->GetTable(orders)->ReadRow(1000, qts);

  std::printf("visibility wait: %lld us\n", static_cast<long long>(waited_us));
  if (row) {
    std::printf("order 1000: amount=%.2f status=%s\n", row->at(0).as_double(),
                row->at(1).as_string().c_str());
  }
  std::printf("backup rows visible: %zu (orders) + %zu (audit)\n",
              backup.store()->GetTable(orders)->VisibleRowCount(qts),
              backup.store()->GetTable(audit)->VisibleRowCount(qts));

  backup.Stop();
  std::printf("replayed %llu txns in %lld us (%s)\n",
              static_cast<unsigned long long>(backup.stats().txns.load()),
              static_cast<long long>(backup.stats().WallMicros()),
              backup.error().ok() ? "ok" : backup.error().ToString().c_str());
  return 0;
}
