// Durable replay driver: the crash-restart gauntlet's workhorse
// (DESIGN.md §10, scripts/crash_restart_gauntlet.sh,
// scripts/endurance_check.sh).
//
// Three modes over one seeded, fully deterministic workload (no wall-clock
// heartbeats — epoch ids and commit timestamps depend only on --seed):
//
//   run      Streams the workload through primary -> LogShipper (durable
//            segment tier attached, small RAM retention) -> AetsReplayer,
//            pacing itself so a kill -9 lands mid-stream, and writing live
//            checkpoints into the segment directory between epochs. The
//            gauntlet kills this process at a seeded random point.
//
//   digest   The uninterrupted reference: same pipeline run to completion,
//            then one line per data epoch
//                EPOCH <id> <max_commit_ts> <digest>
//            and a FINAL line. Digests are TableStore::DigestAt at each
//            epoch's max commit timestamp (valid historically: no GC here).
//
//   recover  Reopens the segment directory after a crash: SegmentStore::Open
//            truncates any torn tail, the newest restorable checkpoint
//            bootstraps a fresh replayer, and the segment tail replays
//            through the normal main loop via DurableEpochSource. Verifies
//            the recovered store against the sim oracle's ReferenceModel
//            (exact rows, not just a digest) and prints
//                RECOVERED next_epoch=<n> ts=<ts> digest=<d> fetches=<f>
//                          tail=<n> torn=<n> floor=<f>
//            for the gauntlet to match against the reference EPOCH table.
//
// With --disk_budget B > 0 the shipper's CheckpointTrigger fires whenever a
// lane's durable log exceeds B bytes; the driver then seals the open epoch,
// quiesces the backup, writes a live checkpoint image, truncates the durable
// log below it (SegmentStore::TruncateBelow), and rotates old images. Budget
// triggers land at deterministic txn indices (bytes appended are a pure
// function of the seed), so run and digest modes checkpoint and truncate at
// identical epochs and the reference EPOCH table — harvested incrementally
// before each truncation — still covers the whole history. Recovery then has
// to bridge the deleted prefix through the checkpoint image, which is the
// case the endurance gauntlet exists to prove.
//
//   $ ./durable_replay run --dir /tmp/aets-seg --seed 11
//   $ ./durable_replay recover --dir /tmp/aets-seg --seed 11

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aets/bench/harness.h"
#include "aets/catalog/shard_map.h"
#include "aets/obs/metrics.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replay/replayer_base.h"
#include "aets/replay/sharded_backup.h"
#include "aets/replication/durable_source.h"
#include "aets/replication/log_shipper.h"
#include "aets/sim/reference_model.h"
#include "aets/storage/segment_store.h"

using namespace aets;

namespace {

struct Config {
  std::string mode;
  std::string dir;
  uint64_t seed = 1;
  int num_tables = 4;
  int num_txns = 20000;
  int epoch_size = 32;
  int batch = 50;          // txns per pacing step (run mode)
  int pause_us = 2000;     // sleep per pacing step (run mode)
  int ckpt_every = 3000;   // txns between live checkpoints (run mode)
  size_t retention = 16;   // RAM retention epochs: small, to force spills
  size_t segment_max_bytes = 256u << 10;  // small, to force rollovers
  // Backup shard count (DESIGN.md §11). 1 is the classic single-replayer
  // pipeline the crash gauntlet drives; N > 1 runs N in-process shards, each
  // with its own sub-epoch lane, segment directory (<dir>/shard<k>), and
  // NACK source, behind a ShardedBackup. Without a disk budget, sharded runs
  // skip live checkpoints (recovery is a cold per-shard replay of each
  // lane's durable log); with one, each shard checkpoints into its own
  // directory whenever its lane's log exceeds the budget.
  int shard_count = 1;
  // Per-lane durable-log budget in bytes (SegmentStoreOptions::
  // disk_budget_bytes). 0 disables truncation entirely — the pre-budget
  // behavior, which the classic gauntlet cases still exercise.
  uint64_t disk_budget = 0;
  // Checkpoint images kept per directory by PruneCheckpoints rotation (the
  // truncation-floor image is protected beyond this count).
  size_t keep_ckpts = 3;
};

std::string ShardDir(const std::string& dir, int shard) {
  return dir + "/shard" + std::to_string(shard);
}

// Deterministic splitmix64 — the driver must replay identically on every
// invocation with the same seed, across processes.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

void FillCatalog(Catalog* catalog, int num_tables) {
  for (int t = 0; t < num_tables; ++t) {
    TableId id = catalog
                     ->RegisterTable("t" + std::to_string(t),
                                     Schema::Of({{"count", ColumnType::kInt64},
                                                 {"payload", ColumnType::kString}}))
                     .value();
    (void)id;
  }
}

// One deterministic transaction: 1-3 ops over 150 keys per table, with the
// insert/update/delete choice keyed to what is currently live.
void ApplyOneTxn(PrimaryDb* db, Rng* rng, int num_tables,
                 std::vector<std::set<int64_t>>* live, int64_t i) {
  PrimaryTxn txn = db->Begin();
  int ops = 1 + static_cast<int>(rng->Below(3));
  for (int o = 0; o < ops; ++o) {
    TableId t = static_cast<TableId>(rng->Below(num_tables));
    int64_t key = static_cast<int64_t>(rng->Below(150));
    uint64_t roll = rng->Below(100);
    auto& alive = (*live)[t];
    if (alive.count(key) == 0) {
      txn.Insert(t, key,
                 {{0, Value(i)}, {1, Value("ins-" + std::to_string(i))}});
      alive.insert(key);
    } else if (roll < 75) {
      txn.Update(t, key,
                 {{0, Value(i)}, {1, Value("upd-" + std::to_string(i))}});
    } else {
      txn.Delete(t, key);
      alive.erase(key);
    }
  }
  if (!db->Commit(std::move(txn)).ok()) {
    std::fprintf(stderr, "commit %lld failed\n", static_cast<long long>(i));
    std::exit(2);
  }
}

AetsOptions ReplayOptions(int num_tables) {
  AetsOptions options;
  options.replay_threads = 2;
  options.commit_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = std::vector<double>(num_tables, 1.0);
  return options;
}

uint64_t CounterValue(const char* name) {
  auto snap = obs::MetricsRegistry::Instance().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// Resident set size in KiB, for the endurance gauntlet's flat-memory check.
long ReadRssKb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atol(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

SegmentStoreOptions StoreOptions(const Config& cfg, const std::string& dir) {
  SegmentStoreOptions options;
  options.dir = dir;
  options.segment_max_bytes = cfg.segment_max_bytes;
  options.fsync_policy = FsyncPolicy::kSegment;
  options.disk_budget_bytes = cfg.disk_budget;
  return options;
}

int RunMode(const Config& cfg, bool paced) {
  Catalog catalog;
  FillCatalog(&catalog, cfg.num_tables);
  LogicalClock clock;
  PrimaryDb primary(&catalog, &clock);

  const int n = cfg.shard_count > 1 ? cfg.shard_count : 1;
  ShardMap map = ShardMap::Hash(static_cast<size_t>(cfg.num_tables), n);
  LogShipper shipper(cfg.epoch_size, cfg.retention);
  if (n > 1) shipper.SetShardMap(&map);

  std::vector<std::unique_ptr<SegmentStore>> stores;
  for (int s = 0; s < n; ++s) {
    auto store_or = SegmentStore::Open(
        StoreOptions(cfg, n == 1 ? cfg.dir : ShardDir(cfg.dir, s)));
    if (!store_or.ok()) {
      std::fprintf(stderr, "segment store: %s\n",
                   store_or.status().ToString().c_str());
      return 2;
    }
    stores.push_back(std::move(*store_or));
    if (n == 1) {
      shipper.AttachSegmentStore(stores.back().get());
    } else {
      shipper.AttachShardSegmentStore(s, stores.back().get());
    }
  }

  std::vector<std::unique_ptr<EpochChannel>> channels;
  std::vector<EpochChannel*> raw;
  for (int s = 0; s < n; ++s) {
    channels.push_back(std::make_unique<EpochChannel>());
    raw.push_back(channels.back().get());
    if (n == 1) {
      shipper.AttachChannel(raw.back());
    } else {
      shipper.AttachShardChannel(s, raw.back());
    }
  }
  primary.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  std::unique_ptr<AetsReplayer> single;
  std::unique_ptr<ShardedBackup> sharded;
  if (n == 1) {
    single = std::make_unique<AetsReplayer>(&catalog, raw[0],
                                            ReplayOptions(cfg.num_tables));
    single->SetEpochSource(&shipper);
    if (!single->Start().ok()) return 2;
  } else {
    AetsOptions base = ReplayOptions(cfg.num_tables);
    base.replay_threads = std::max(base.replay_threads, n);
    base.commit_threads = std::max(base.commit_threads, n);
    sharded = MakeShardedAetsBackup(&catalog, &map, raw, base);
    for (int s = 0; s < n; ++s) {
      sharded->SetShardEpochSource(s, shipper.shard_source(s));
    }
    if (!sharded->Start().ok()) return 2;
  }
  Replayer* backup =
      n == 1 ? static_cast<Replayer*>(single.get()) : sharded.get();
  auto replay_error = [&]() -> Status {
    if (n == 1) return single->error();
    for (int s = 0; s < n; ++s) {
      Status st = dynamic_cast<ReplayerBase*>(sharded->shard(s))->error();
      if (!st.ok()) return st;
    }
    return Status::OK();
  };
  auto replayer_for = [&](int s) -> AetsReplayer* {
    return n == 1 ? single.get()
                  : dynamic_cast<AetsReplayer*>(sharded->shard(s));
  };

  // Disk budget: the shipper's trigger marks the over-budget lane's backup;
  // the driver consumes the mark at one deterministic point per txn (below),
  // so paced and unpaced runs checkpoint and truncate at identical epochs.
  if (cfg.disk_budget > 0) {
    shipper.SetCheckpointTrigger([&](int shard, EpochId, uint64_t) {
      replayer_for(shard)->RequestCheckpoint();
    });
  }

  // The epoch table, harvested incrementally: truncation deletes the oldest
  // durable epochs, so the (id, ts) rows digest mode prints are collected
  // BEFORE each truncation and completed after Finish. The digests
  // themselves still come from the fully caught-up backup at the very end
  // (valid at historical timestamps: the replay store runs no GC).
  std::vector<std::pair<EpochId, Timestamp>> epoch_table;
  EpochId harvested = 0;
  auto harvest = [&]() {
    EpochId limit = stores[0]->next_epoch();
    for (int s = 1; s < n; ++s) {
      limit = std::min(limit, stores[s]->next_epoch());
    }
    for (EpochId id = harvested; id < limit; ++id) {
      bool has_data = false;
      Timestamp ts = kInvalidTimestamp;
      for (int s = 0; s < n; ++s) {
        auto epoch = stores[s]->Read(id);
        if (!epoch || epoch->is_heartbeat()) continue;
        has_data = true;
        ts = std::max(ts, epoch->max_commit_ts);
      }
      if (has_data) epoch_table.emplace_back(id, ts);
    }
    harvested = std::max(harvested, limit);
  };

  uint64_t max_disk = 0;
  Rng rng{cfg.seed};
  std::vector<std::set<int64_t>> live(cfg.num_tables);
  for (int i = 1; i <= cfg.num_txns; ++i) {
    ApplyOneTxn(&primary, &rng, cfg.num_tables, &live, i);
    if (cfg.disk_budget > 0) {
      for (int s = 0; s < n; ++s) {
        max_disk = std::max(max_disk, stores[s]->disk_bytes());
      }
    }
    if (paced && i % cfg.batch == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.pause_us));
    }
    if (i % cfg.ckpt_every == 0) {
      // Flush in BOTH modes: epoch boundaries are part of the deterministic
      // stream, and the reference digest table must place them exactly where
      // the killed run did.
      shipper.FlushEpoch();
    }
    if (cfg.disk_budget > 0) {
      for (int s = 0; s < n; ++s) {
        if (!replayer_for(s)->TakeCheckpointRequest()) continue;
        // Budget checkpoint: seal the open epoch, wait for the backup to
        // catch up, image the quiesced shard, truncate its durable log
        // below the image, and rotate old images (PruneCheckpoints keeps
        // the floor image regardless of count). Runs in BOTH paced and
        // digest modes — the trigger fires at a deterministic txn index,
        // so the reference stream must incur the same extra flush.
        shipper.FlushEpoch();
        while (replay_error().ok() &&
               backup->GlobalVisibleTs() < primary.last_commit_ts()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!replay_error().ok()) break;
        harvest();  // the epochs below the new floor leave the disk now
        AetsReplayer* ar = replayer_for(s);
        const std::string cdir = n == 1 ? cfg.dir : ShardDir(cfg.dir, s);
        EpochId floor = ar->next_expected_epoch();
        Status cs = ar->WriteLiveCheckpoint(CheckpointPathFor(cdir, floor));
        if (!cs.ok()) {
          std::fprintf(stderr, "budget checkpoint: %s\n",
                       cs.ToString().c_str());
          return 2;
        }
        Status trunc = stores[s]->TruncateBelow(floor);
        if (!trunc.ok()) {
          std::fprintf(stderr, "truncate: %s\n", trunc.ToString().c_str());
          return 2;
        }
        PruneCheckpoints(cdir, cfg.keep_ckpts, stores[s]->first_epoch());
        std::printf("TRUNC shard=%d floor=%" PRIu64 " first=%" PRIu64
                    " deleted=%" PRIu64 " reclaimed=%" PRIu64 " disk=%" PRIu64
                    " rss_kb=%ld txns=%d\n",
                    s, static_cast<uint64_t>(floor),
                    static_cast<uint64_t>(stores[s]->first_epoch()),
                    stores[s]->segments_deleted(),
                    stores[s]->bytes_reclaimed(), stores[s]->disk_bytes(),
                    ReadRssKb(), i);
        std::fflush(stdout);
      }
    }
    if (paced && i % cfg.ckpt_every == 0 && n == 1 && cfg.disk_budget == 0) {
      // Quiesce: the epoch is sealed, wait for the backup to catch up, then
      // snapshot the live backup. The single-threaded driver guarantees no
      // epoch ships between the watermark check and the checkpoint write.
      // (With a disk budget the trigger path above owns the checkpoint
      // cadence instead; without one, sharded runs skip live checkpoints:
      // recovery cold-replays each lane.)
      while (replay_error().ok() &&
             backup->GlobalVisibleTs() < primary.last_commit_ts()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (!replay_error().ok()) break;
      std::string path =
          CheckpointPathFor(cfg.dir, single->next_expected_epoch());
      Status s = single->WriteLiveCheckpoint(path);
      if (!s.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
        return 2;
      }
      PruneCheckpoints(cfg.dir, cfg.keep_ckpts);
      std::printf("CKPT %" PRIu64 " txns=%d\n",
                  static_cast<uint64_t>(single->next_expected_epoch()), i);
      std::fflush(stdout);
    }
  }
  shipper.Finish();
  backup->Stop();
  if (!replay_error().ok()) {
    std::fprintf(stderr, "replay error: %s\n",
                 replay_error().ToString().c_str());
    return 2;
  }

  // The epoch table (digest mode prints it; run mode prints FINAL only,
  // used when the gauntlet's kill misses and the run completes). An epoch
  // counts as data if any lane carries transactions; the snapshot timestamp
  // is the full-epoch max every lane header carries, and the digest combines
  // each table's state from its owning shard (identical to the single-store
  // digest when n == 1).
  harvest();
  EpochId last_data = 0;
  Timestamp last_ts = kInvalidTimestamp;
  for (const auto& [id, ts] : epoch_table) {
    if (cfg.mode == "digest") {
      std::printf("EPOCH %" PRIu64 " %" PRIu64 " %016" PRIx64 "\n",
                  static_cast<uint64_t>(id), static_cast<uint64_t>(ts),
                  ReplicaDigestAt(backup, &catalog, ts));
    }
    last_data = id;
    last_ts = ts;
  }
  uint64_t truncations = 0;
  uint64_t reclaimed = 0;
  for (int s = 0; s < n; ++s) {
    truncations += stores[s]->truncations();
    reclaimed += stores[s]->bytes_reclaimed();
  }
  std::printf("FINAL %" PRIu64 " %" PRIu64 " %016" PRIx64 " spills=%" PRIu64
              " produced=%" PRIu64 " covered=%" PRIu64 " truncations=%" PRIu64
              " reclaimed=%" PRIu64 " max_disk=%" PRIu64 " budget=%" PRIu64
              "\n",
              static_cast<uint64_t>(last_data),
              static_cast<uint64_t>(last_ts),
              ReplicaDigestAt(backup, &catalog, last_ts),
              shipper.epochs_spilled(), shipper.epochs_produced(),
              shipper.spills_below_floor(), truncations, reclaimed, max_disk,
              cfg.disk_budget);
  std::fflush(stdout);
  return 0;
}

// Sharded restart: reopen each shard's segment directory, bootstrap each
// lane from the newest checkpoint image that bridges its (possibly
// truncated) durable log, replay every lane's tail through its own
// DurableEpochSource behind a ShardedBackup, and verify each shard
// row-for-row against a per-lane ReferenceModel (a lane's durable log plus
// its image is a complete history of its own tables, so the lane model and
// the shard store must agree exactly).
int RecoverShardedMode(const Config& cfg) {
  Catalog catalog;
  FillCatalog(&catalog, cfg.num_tables);
  const int n = cfg.shard_count;
  ShardMap map = ShardMap::Hash(static_cast<size_t>(cfg.num_tables), n);

  std::vector<std::unique_ptr<SegmentStore>> stores;
  for (int s = 0; s < n; ++s) {
    auto store_or = SegmentStore::Open(StoreOptions(cfg, ShardDir(cfg.dir, s)));
    if (!store_or.ok()) {
      std::fprintf(stderr, "segment store shard %d: %s\n", s,
                   store_or.status().ToString().c_str());
      return 2;
    }
    stores.push_back(std::move(*store_or));
  }

  EpochChannel closed_channel;
  closed_channel.Close();
  std::vector<std::unique_ptr<Replayer>> shards;
  std::vector<EpochId> boot(static_cast<size_t>(n), 0);
  std::vector<Timestamp> snapshot(static_cast<size_t>(n), kInvalidTimestamp);
  for (int s = 0; s < n; ++s) {
    std::unique_ptr<AetsReplayer> shard;
    for (const std::string& ckpt : ListCheckpointFiles(ShardDir(cfg.dir, s))) {
      auto candidate = std::make_unique<AetsReplayer>(
          &catalog, &closed_channel, ReplayOptions(cfg.num_tables));
      Status st = candidate->Bootstrap(ckpt);
      if (!st.ok()) {
        std::fprintf(stderr, "shard %d checkpoint %s rejected: %s\n", s,
                     ckpt.c_str(), st.ToString().c_str());
        continue;
      }
      if (candidate->next_expected_epoch() > stores[s]->next_epoch()) {
        std::fprintf(stderr,
                     "shard %d checkpoint %s ahead of durable log, skipping\n",
                     s, ckpt.c_str());
        continue;
      }
      if (candidate->next_expected_epoch() < stores[s]->first_epoch()) {
        std::fprintf(
            stderr,
            "shard %d checkpoint %s below truncation floor %llu, skipping\n",
            s, ckpt.c_str(),
            static_cast<unsigned long long>(stores[s]->first_epoch()));
        continue;
      }
      shard = std::move(candidate);
      boot[s] = shard->next_expected_epoch();
      snapshot[s] = shard->GlobalVisibleTs();
      std::printf("BOOTSTRAP shard=%d %s epoch=%" PRIu64 "\n", s,
                  ckpt.c_str(), static_cast<uint64_t>(boot[s]));
      break;
    }
    if (!shard) {
      if (stores[s]->first_epoch() > 0) {
        std::fprintf(stderr,
                     "shard %d unrecoverable: durable log starts at epoch "
                     "%llu (truncated) and no checkpoint image bridges it\n",
                     s,
                     static_cast<unsigned long long>(stores[s]->first_epoch()));
        return 2;
      }
      shard = std::make_unique<AetsReplayer>(&catalog, &closed_channel,
                                             ReplayOptions(cfg.num_tables));
    }
    shards.push_back(std::move(shard));
  }
  ShardedBackup backup(&map, std::move(shards));
  std::vector<std::unique_ptr<DurableEpochSource>> sources;
  for (int s = 0; s < n; ++s) {
    sources.push_back(std::make_unique<DurableEpochSource>(stores[s].get()));
    backup.SetShardEpochSource(s, sources.back().get());
  }
  if (!backup.Start().ok()) return 2;
  backup.Stop();

  EpochId last_data = 0;
  Timestamp last_ts = kInvalidTimestamp;
  EpochId floor = 0;
  uint64_t tail = 0;
  uint64_t torn = 0;
  size_t rows = 0;
  for (int s = 0; s < n; ++s) {
    auto* shard = dynamic_cast<ReplayerBase*>(backup.shard(s));
    if (!shard->error().ok()) {
      std::fprintf(stderr, "shard %d recovery replay error: %s\n", s,
                   shard->error().ToString().c_str());
      return 2;
    }
    sim::ReferenceModel model(cfg.num_tables);
    if (boot[s] > 0) {
      // The oracle cannot replay epochs truncation deleted: seed it from
      // the bootstrapped image (its own second opinion of
      // Checkpointer::Restore) and replay only the tail the image misses.
      Status st = model.SeedFromStore(*shard->store(), snapshot[s], boot[s]);
      if (!st.ok()) {
        std::fprintf(stderr, "shard %d model seed: %s\n", s,
                     st.ToString().c_str());
        return 2;
      }
    }
    for (EpochId id = stores[s]->first_epoch(); id < stores[s]->next_epoch();
         ++id) {
      auto epoch = stores[s]->Read(id);
      if (!epoch) {
        std::fprintf(stderr, "durable epoch %llu unreadable (shard %d)\n",
                     static_cast<unsigned long long>(id), s);
        return 2;
      }
      if (id >= boot[s]) {
        Status st = model.Apply(*epoch);
        if (!st.ok()) {
          std::fprintf(stderr, "shard %d model apply: %s\n", s,
                       st.ToString().c_str());
          return 2;
        }
      }
      if (!epoch->is_heartbeat()) {
        last_data = std::max(last_data, id);
        last_ts = std::max(last_ts, epoch->max_commit_ts);
      }
    }
    // The lane model only sees the lane's own commits; the sub-epoch header
    // carries the FULL epoch's max_commit_ts, so the shard watermark may
    // legitimately sit past the lane's last commit (never short of it). The
    // exactness probe reads at the lane's own history point — between it and
    // the watermark the lane's tables have no writes by construction.
    Timestamp watermark = shard->GlobalVisibleTs();
    if (model.MaxVisibleTs() != kInvalidTimestamp) {
      if (watermark < model.MaxVisibleTs()) {
        std::fprintf(stderr,
                     "shard %d watermark %llu short of durable history %llu\n",
                     s, static_cast<unsigned long long>(watermark),
                     static_cast<unsigned long long>(model.MaxVisibleTs()));
        return 2;
      }
      Status st = model.ExpectStoreExact(*shard->store(), model.MaxVisibleTs());
      if (!st.ok()) {
        std::fprintf(stderr, "shard %d: %s\n", s, st.ToString().c_str());
        return 2;
      }
      rows += shard->store()->VisibleRowCount(model.MaxVisibleTs());
    }
    floor = s == 0 ? stores[s]->first_epoch()
                   : std::min(floor, stores[s]->first_epoch());
    tail += stores[s]->next_epoch() - boot[s];
    torn += stores[s]->torn_frames_truncated();
  }
  std::printf("ORACLE exact rows=%zu shards=%d\n", rows, n);
  std::printf("RECOVERED next_epoch=%" PRIu64 " last_data=%" PRIu64
              " ts=%" PRIu64 " digest=%016" PRIx64 " fetches=%" PRIu64
              " tail=%" PRIu64 " torn=%" PRIu64 " floor=%" PRIu64 "\n",
              static_cast<uint64_t>(stores[0]->next_epoch()),
              static_cast<uint64_t>(last_data),
              static_cast<uint64_t>(last_ts),
              ReplicaDigestAt(&backup, &catalog, last_ts),
              CounterValue("segment.fetches_from_disk"), tail, torn,
              static_cast<uint64_t>(floor));
  std::fflush(stdout);
  return 0;
}

int RecoverMode(const Config& cfg) {
  if (cfg.shard_count > 1) return RecoverShardedMode(cfg);
  Catalog catalog;
  FillCatalog(&catalog, cfg.num_tables);

  auto store_or = SegmentStore::Open(StoreOptions(cfg, cfg.dir));
  if (!store_or.ok()) {
    std::fprintf(stderr, "segment store: %s\n",
                 store_or.status().ToString().c_str());
    return 2;
  }
  SegmentStore& store = **store_or;

  // Newest restorable checkpoint wins; a corrupt image falls back to the
  // next older one. No image at all means a cold replay from epoch 0 — only
  // legal while the log still starts there; once truncation has raised the
  // floor, an image bridging [floor's coverage] is the only way back.
  DurableEpochSource source(&store);
  std::unique_ptr<AetsReplayer> backup;
  EpochChannel closed_channel;
  closed_channel.Close();
  EpochId bootstrapped_at = 0;
  Timestamp snapshot_ts = kInvalidTimestamp;
  for (const std::string& ckpt : ListCheckpointFiles(cfg.dir)) {
    auto candidate = std::make_unique<AetsReplayer>(
        &catalog, &closed_channel, ReplayOptions(cfg.num_tables));
    Status s = candidate->Bootstrap(ckpt);
    if (!s.ok()) {
      std::fprintf(stderr, "checkpoint %s rejected: %s\n", ckpt.c_str(),
                   s.ToString().c_str());
      continue;
    }
    if (candidate->next_expected_epoch() > store.next_epoch()) {
      // The image is ahead of the durable log (a chaos-truncated segment
      // tail): restoring it would fake epochs the log cannot replay. Fall
      // back to an older image that the log covers.
      std::fprintf(stderr, "checkpoint %s ahead of durable log, skipping\n",
                   ckpt.c_str());
      continue;
    }
    if (candidate->next_expected_epoch() < store.first_epoch()) {
      // The image predates the truncation floor: the epochs between its
      // coverage and the log's first surviving segment were deleted under a
      // NEWER image's coverage, so this one cannot bridge to the tail.
      std::fprintf(stderr,
                   "checkpoint %s below truncation floor %llu, skipping\n",
                   ckpt.c_str(),
                   static_cast<unsigned long long>(store.first_epoch()));
      continue;
    }
    backup = std::move(candidate);
    bootstrapped_at = backup->next_expected_epoch();
    snapshot_ts = backup->GlobalVisibleTs();
    std::printf("BOOTSTRAP %s epoch=%" PRIu64 "\n", ckpt.c_str(),
                static_cast<uint64_t>(bootstrapped_at));
    break;
  }
  if (!backup) {
    if (store.first_epoch() > 0) {
      std::fprintf(stderr,
                   "unrecoverable: durable log starts at epoch %llu "
                   "(truncated) and no checkpoint image bridges it\n",
                   static_cast<unsigned long long>(store.first_epoch()));
      return 2;
    }
    backup = std::make_unique<AetsReplayer>(&catalog, &closed_channel,
                                            ReplayOptions(cfg.num_tables));
  }

  // The channel is already closed, so Start() + Stop() drives the normal
  // FinalDrain: every epoch in [bootstrapped_at, store.next_epoch()) is
  // fetched from disk and replayed through the regular two-stage loop.
  backup->SetEpochSource(&source);
  if (!backup->Start().ok()) return 2;
  backup->Stop();
  if (!backup->error().ok()) {
    std::fprintf(stderr, "recovery replay error: %s\n",
                 backup->error().ToString().c_str());
    return 2;
  }

  // Exactness probe: rebuild the reference history from the durable log
  // (the model is a second implementation of the storage semantics) and
  // demand the recovered store match it row for row at the watermark. When
  // the image covers epochs the log no longer holds, the model is seeded
  // from the bootstrapped store at the snapshot timestamp (still valid
  // after the tail replayed: the MVCC store keeps history and runs no GC
  // here) and replays only the tail — epochs still on disk below the
  // image's coverage are scanned for the last-data bookkeeping but skipped
  // by the model, exactly as recovery itself skipped them.
  sim::ReferenceModel model(cfg.num_tables);
  if (bootstrapped_at > 0) {
    Status s = model.SeedFromStore(*backup->store(), snapshot_ts,
                                   bootstrapped_at);
    if (!s.ok()) {
      std::fprintf(stderr, "model seed: %s\n", s.ToString().c_str());
      return 2;
    }
  }
  Timestamp last_ts = kInvalidTimestamp;
  EpochId last_data = 0;
  for (EpochId id = store.first_epoch(); id < store.next_epoch(); ++id) {
    auto epoch = store.Read(id);
    if (!epoch) {
      std::fprintf(stderr, "durable epoch %llu unreadable\n",
                   static_cast<unsigned long long>(id));
      return 2;
    }
    if (id >= bootstrapped_at) {
      Status s = model.Apply(*epoch);
      if (!s.ok()) {
        std::fprintf(stderr, "model apply: %s\n", s.ToString().c_str());
        return 2;
      }
    }
    if (!epoch->is_heartbeat()) {
      last_data = id;
      last_ts = epoch->max_commit_ts;
    }
  }
  Timestamp watermark = backup->GlobalVisibleTs();
  if (last_ts != kInvalidTimestamp || bootstrapped_at > 0) {
    if (watermark != model.MaxVisibleTs()) {
      std::fprintf(stderr,
                   "watermark %llu short of durable history %llu\n",
                   static_cast<unsigned long long>(watermark),
                   static_cast<unsigned long long>(model.MaxVisibleTs()));
      return 2;
    }
    Status s = model.ExpectStoreExact(*backup->store(), watermark);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("ORACLE exact rows=%zu\n",
                backup->store()->VisibleRowCount(watermark));
  }

  std::printf("RECOVERED next_epoch=%" PRIu64 " last_data=%" PRIu64
              " ts=%" PRIu64 " digest=%016" PRIx64 " fetches=%" PRIu64
              " tail=%" PRIu64 " torn=%" PRIu64 " floor=%" PRIu64 "\n",
              static_cast<uint64_t>(store.next_epoch()),
              static_cast<uint64_t>(last_data),
              static_cast<uint64_t>(last_ts),
              backup->store()->DigestAt(last_ts),
              CounterValue("segment.fetches_from_disk"),
              static_cast<uint64_t>(store.next_epoch() - bootstrapped_at),
              store.torn_frames_truncated(),
              static_cast<uint64_t>(store.first_epoch()));
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s run|digest|recover --dir D [--seed N] [--txns N] "
                 "[--tables N] [--epoch_size N] [--batch N] [--pause_us N] "
                 "[--ckpt_every N] [--retention N] [--shard_count N] "
                 "[--disk_budget BYTES] [--keep_ckpts N]\n",
                 argv[0]);
    return 2;
  }
  cfg.mode = argv[1];
  // Flags win over the env knob (same precedence as the sim harness).
  if (const char* env = std::getenv("AETS_SHARD_COUNT")) {
    cfg.shard_count = std::atoi(env);
  }
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "--dir") cfg.dir = val;
    else if (flag == "--seed") cfg.seed = std::strtoull(val, nullptr, 10);
    else if (flag == "--txns") cfg.num_txns = std::atoi(val);
    else if (flag == "--tables") cfg.num_tables = std::atoi(val);
    else if (flag == "--epoch_size") cfg.epoch_size = std::atoi(val);
    else if (flag == "--batch") cfg.batch = std::atoi(val);
    else if (flag == "--pause_us") cfg.pause_us = std::atoi(val);
    else if (flag == "--ckpt_every") cfg.ckpt_every = std::atoi(val);
    else if (flag == "--retention") cfg.retention = std::strtoull(val, nullptr, 10);
    else if (flag == "--shard_count") cfg.shard_count = std::atoi(val);
    else if (flag == "--disk_budget") cfg.disk_budget = std::strtoull(val, nullptr, 10);
    else if (flag == "--keep_ckpts") cfg.keep_ckpts = std::strtoull(val, nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (cfg.dir.empty()) {
    std::fprintf(stderr, "--dir is required\n");
    return 2;
  }
  if (cfg.mode == "run") return RunMode(cfg, /*paced=*/true);
  if (cfg.mode == "digest") return RunMode(cfg, /*paced=*/false);
  if (cfg.mode == "recover") return RecoverMode(cfg);
  std::fprintf(stderr, "unknown mode %s\n", cfg.mode.c_str());
  return 2;
}
