// Reproduces paper Fig. 12: effect of epoch size on average visibility
// delay (TPC-C). Paper shape: a U-curve — too-small epochs forfeit the
// two-stage prioritization (hot logs of the next epoch queue behind cold
// logs of this one) and pay per-epoch overhead; too-large epochs wait to
// assemble enough transactions before anything becomes visible. The paper's
// minimum sits near 2048; with the scaled-down transaction counts here the
// minimum lands at a proportionally smaller size.

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

void Run() {
  int threads = BenchThreads(4);
  TpccConfig config;
  config.warehouses = 2;
  config.items = 400;
  config.customers_per_district = 40;
  config.init_orders_per_district = 10;

  TpccWorkload shape(config);
  std::vector<double> rates(shape.catalog().num_tables(), 0.0);
  rates[shape.district()] = 100;
  rates[shape.stock()] = 100;
  rates[shape.customer()] = 100;
  rates[shape.orders()] = 100;
  rates[shape.orderline()] = 200;

  std::printf("Fig 12: epoch size vs average visibility delay "
              "(TPC-C, AETS, %d threads)\n\n",
              threads);

  // The visibility delay has two opposed components (the paper's U-shape):
  //  - replay-side: tiny epochs forfeit two-stage prioritization and pay
  //    per-epoch overhead — measured by draining a recorded backlog;
  //  - shipping-side: large epochs wait to assemble enough transactions
  //    before anything ships — measured live (heartbeats at the paper's
  //    50 ms flush idle partial epochs).
  // The combined column is their sum: high at both extremes, minimal at a
  // moderate epoch size (paper: 2048 at their scale).
  auto make_workload = [config]() -> std::unique_ptr<Workload> {
    return std::make_unique<TpccWorkload>(config);
  };
  const size_t epoch_sizes[] = {16, 64, 256, 1024, 4096, 16384};
  TablePrinter table({"epoch size", "replay-side us", "assembly-side us",
                      "combined us"});
  for (size_t epoch_size : epoch_sizes) {
    ReplayerSpec spec;
    spec.kind = ReplayerKind::kAets;
    spec.threads = threads;
    spec.grouping = GroupingMode::kStatic;
    spec.hot_groups = shape.DefaultHotGroups();
    spec.rates = rates;

    // Replay-side component (catch-up drain; epoch sealing re-recorded at
    // this size).
    TpccWorkload workload(config);
    RecordedLog log =
        RecordWorkload(&workload, Scaled(6000, 300), epoch_size, /*seed=*/44);
    CatchUpOptions catch_options;
    catch_options.queries = Scaled(600, 60);
    catch_options.seed = 44;
    double replay_side = 0;
    for (int rep = 0; rep < 3; ++rep) {
      CatchUpResult r = RunCatchUp(log, &workload, spec, catch_options);
      AETS_CHECK(r.state_matches_primary);
      replay_side += r.mean_delay_us / 3;
    }

    // Shipping/assembly component (live run).
    LiveRunOptions live_options;
    // The OLTP phase must outlast the query stream so every query observes
    // the epoch-assembly wait in progress (queries arriving after OLTP ends
    // see only heartbeat-flushed data).
    live_options.oltp_txns = Scaled(20000, 2000);
    live_options.olap_queries = Scaled(200, 40);
    live_options.think_us = 4000;
    live_options.epoch_size = epoch_size;
    live_options.seed = 44;
    live_options.heartbeat_interval_us = 50'000;  // paper Section V-B
    LiveRunResult live = RunLive(make_workload, spec, live_options);
    AETS_CHECK(live.state_matches_primary);

    table.AddRow({std::to_string(epoch_size),
                  TablePrinter::Fmt(replay_side, 1),
                  TablePrinter::Fmt(live.mean_delay_us, 1),
                  TablePrinter::Fmt(replay_side + live.mean_delay_us, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
