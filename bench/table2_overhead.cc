// Reproduces paper Table II: AETS management overhead — the share of total
// replay-side work spent dispatching log entries to groups, replaying them
// (phase 1), and committing (phase 2). Paper values: dispatch ~0.4-0.8%,
// replay 98.4-99.5%, commit 0.16-0.76%.

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/workload/bustracker.h"
#include "aets/workload/chbenchmark.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

BatchReplayResult Measure(Workload* workload, GroupingMode grouping,
                          std::vector<std::vector<TableId>> hot_groups,
                          std::vector<double> rates) {
  RecordedLog log =
      RecordWorkload(workload, Scaled(3000, 300), /*epoch_size=*/256, 66);
  ReplayerSpec spec;
  spec.kind = ReplayerKind::kAets;
  spec.threads = BenchThreads(4);
  spec.grouping = grouping;
  spec.hot_groups = std::move(hot_groups);
  spec.rates = std::move(rates);
  BatchReplayResult r = ReplayRecorded(log, &workload->catalog(), spec);
  AETS_CHECK(r.state_matches_primary);
  return r;
}

void Run() {
  std::printf("Table II: AETS management overhead "
              "(share of replay-side busy time)\n");
  TablePrinter table(
      {"dataset", "dispatch", "replay", "commit", "paper dispatch/replay/commit"});

  {
    TpccConfig config;
    config.warehouses = 2;
    config.items = 400;
    config.customers_per_district = 40;
    config.init_orders_per_district = 10;
    TpccWorkload tpcc(config);
    std::vector<double> rates(tpcc.catalog().num_tables(), 0.0);
    rates[tpcc.district()] = rates[tpcc.stock()] = rates[tpcc.customer()] =
        rates[tpcc.orders()] = 100;
    rates[tpcc.orderline()] = 200;
    BatchReplayResult r = Measure(&tpcc, GroupingMode::kStatic,
                                  tpcc.DefaultHotGroups(), rates);
    table.AddRow({"TPC-C", TablePrinter::Fmt(r.dispatch_frac * 100) + "%",
                  TablePrinter::Fmt(r.replay_frac * 100) + "%",
                  TablePrinter::Fmt(r.commit_frac * 100) + "%",
                  "0.37% / 99.47% / 0.16%"});
  }
  {
    BusTrackerConfig config;
    config.rows_per_table = 100;
    BusTrackerWorkload bus(config);
    BatchReplayResult r =
        Measure(&bus, GroupingMode::kByAccessRate, {}, bus.TrueRates(0));
    table.AddRow({"BusTracker", TablePrinter::Fmt(r.dispatch_frac * 100) + "%",
                  TablePrinter::Fmt(r.replay_frac * 100) + "%",
                  TablePrinter::Fmt(r.commit_frac * 100) + "%",
                  "0.80% / 98.44% / 0.76%"});
  }
  {
    TpccConfig config;
    config.warehouses = 2;
    config.items = 300;
    config.customers_per_district = 30;
    config.init_orders_per_district = 5;
    ChBenchmarkWorkload ch(config);
    std::vector<double> rates(ch.catalog().num_tables(), 0.0);
    for (const auto& q : ch.analytic_queries()) {
      for (TableId t : q.tables) rates[t] += 50.0;
    }
    BatchReplayResult r = Measure(&ch, GroupingMode::kPerTable, {}, rates);
    table.AddRow({"CH-benCHmark", TablePrinter::Fmt(r.dispatch_frac * 100) + "%",
                  TablePrinter::Fmt(r.replay_frac * 100) + "%",
                  TablePrinter::Fmt(r.commit_frac * 100) + "%",
                  "0.72% / 99.08% / 0.20%"});
  }
  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
