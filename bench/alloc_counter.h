// Global operator-new replacement that counts heap allocations, so the
// micro-benchmarks can report allocs/record alongside ns/record. Replacement
// allocation functions must not be inline, so this header may be included by
// EXACTLY ONE translation unit per binary (each micro_*.cc is its own
// binary, so including it at the top of the bench file is safe).
//
// Not thread-safe beyond the relaxed counter itself: benchmarks that want a
// meaningful allocs/op figure should measure single-threaded loops.

#ifndef AETS_BENCH_ALLOC_COUNTER_H_
#define AETS_BENCH_ALLOC_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace aets_bench {

std::atomic<size_t> g_allocs{0};

inline size_t AllocCount() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace aets_bench

// GCC pattern-matches free() inside these replacement functions against the
// pointer's original new-expression and flags a mismatch; the pairing is in
// fact consistent because every replacement below allocates with malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  aets_bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  aets_bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

#endif  // AETS_BENCH_ALLOC_COUNTER_H_
