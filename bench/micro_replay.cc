// Micro-benchmarks for the replay-side hot paths: metadata dispatch, the
// full-image dispatch C5 pays, epoch encode, the translate stage in both its
// owning-decode and zero-copy-view forms, and end-to-end single-epoch replay
// through AETS. Reports allocs/record via the global new counter.

#include "alloc_counter.h"  // must precede everything: replaces operator new

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "aets/bench/harness.h"
#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/log/shipped_epoch.h"
#include "aets/storage/version_chain.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replay/replayer_base.h"
#include "aets/replication/channel.h"
#include "aets/workload/bustracker.h"
#include "aets/workload/chbenchmark.h"
#include "aets/workload/query_exec.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

// One recorded TPC-C epoch payload, built once.
struct EpochFixture {
  EpochFixture() : tpcc(SmallConfig()) {
    LogicalClock clock;
    PrimaryDb db(&tpcc.catalog(), &clock);
    Rng rng(1);
    tpcc.Load(&db, &rng);
    // Capture 256 mix transactions into one epoch via the commit sink.
    Epoch epoch;
    epoch.epoch_id = 0;
    std::vector<TxnLog> txns;
    db.SetCommitSink([&](TxnLog t) { txns.push_back(std::move(t)); });
    OltpLikeRun(&db, &rng, 256);
    epoch.txns = std::move(txns);
    shipped = EncodeEpoch(epoch);
  }

  static TpccConfig SmallConfig() {
    TpccConfig config;
    config.warehouses = 1;
    config.items = 100;
    config.customers_per_district = 10;
    config.init_orders_per_district = 2;
    return config;
  }

  void OltpLikeRun(PrimaryDb* db, Rng* rng, int n) {
    for (int i = 0; i < n; ++i) {
      AETS_CHECK(tpcc.RunOltpTransaction(db, rng).ok());
    }
  }

  TpccWorkload tpcc;
  ShippedEpoch shipped;
};

EpochFixture& Fixture() {
  static EpochFixture* fixture = new EpochFixture();
  return *fixture;
}

void BM_DispatchMetadataPass(benchmark::State& state) {
  const std::string& data = *Fixture().shipped.payload;
  for (auto _ : state) {
    size_t offset = 0;
    size_t records = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::DecodeMetadata(data, &offset);
      benchmark::DoNotOptimize(rec);
      ++records;
    }
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.num_records));
}
BENCHMARK(BM_DispatchMetadataPass);

void BM_DispatchFullImagePass(benchmark::State& state) {
  // What C5's dispatcher pays per epoch: full value + checksum decoding.
  const std::string& data = *Fixture().shipped.payload;
  for (auto _ : state) {
    size_t offset = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::Decode(data, &offset);
      benchmark::DoNotOptimize(rec);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.num_records));
}
BENCHMARK(BM_DispatchFullImagePass);

void BM_EncodeEpoch(benchmark::State& state) {
  auto epoch = DecodeEpoch(Fixture().shipped);
  AETS_CHECK(epoch.ok());
  for (auto _ : state) {
    ShippedEpoch shipped = EncodeEpoch(*epoch);
    benchmark::DoNotOptimize(shipped);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.ByteSize()));
}
BENCHMARK(BM_EncodeEpoch);

// The two translate-stage variants below decode every DML record of the
// epoch and produce install-ready VersionCells (what TranslateGroup hands to
// the committer). The owning variant is the pre-refactor shape: a full
// Decode that materializes a std::vector<ColumnValue> (string payloads and
// all) per record. The view variant is the current hot path: DecodeView plus
// a single-memcpy PackedDelta::FromWire.

void BM_TranslateEpochOwning(benchmark::State& state) {
  const std::string& data = *Fixture().shipped.payload;
  std::vector<VersionCell> cells;
  cells.reserve(Fixture().shipped.num_records);
  size_t allocs_before = aets_bench::AllocCount();
  for (auto _ : state) {
    cells.clear();
    size_t offset = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::Decode(data, &offset);
      AETS_CHECK(rec.ok());
      if (!rec->is_dml()) continue;
      VersionCell cell;
      cell.commit_ts = rec->timestamp;
      cell.txn_id = rec->txn_id;
      cell.is_delete = rec->type == LogRecordType::kDelete;
      cell.delta = PackedDelta::FromColumnValues(rec->values);
      cells.push_back(std::move(cell));
    }
    benchmark::DoNotOptimize(cells.data());
  }
  int64_t records = static_cast<int64_t>(Fixture().shipped.num_records);
  state.counters["allocs/record"] = benchmark::Counter(
      static_cast<double>(aets_bench::AllocCount() - allocs_before) /
          static_cast<double>(records),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_TranslateEpochOwning);

void BM_TranslateEpochView(benchmark::State& state) {
  const std::string& data = *Fixture().shipped.payload;
  std::vector<VersionCell> cells;
  cells.reserve(Fixture().shipped.num_records);
  size_t allocs_before = aets_bench::AllocCount();
  for (auto _ : state) {
    cells.clear();
    size_t offset = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::DecodeView(data, &offset);
      AETS_CHECK(rec.ok());
      if (!rec->is_dml()) continue;
      VersionCell cell;
      cell.commit_ts = rec->timestamp;
      cell.txn_id = rec->txn_id;
      cell.is_delete = rec->type == LogRecordType::kDelete;
      cell.delta = PackedDelta::FromWire(rec->num_values, rec->value_bytes);
      cells.push_back(std::move(cell));
    }
    benchmark::DoNotOptimize(cells.data());
  }
  int64_t records = static_cast<int64_t>(Fixture().shipped.num_records);
  state.counters["allocs/record"] = benchmark::Counter(
      static_cast<double>(aets_bench::AllocCount() - allocs_before) /
          static_cast<double>(records),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_TranslateEpochView);

void BM_AetsSingleEpochReplay(benchmark::State& state) {
  const TpccWorkload& tpcc = Fixture().tpcc;
  for (auto _ : state) {
    EpochChannel channel(4);
    channel.Send(Fixture().shipped);
    channel.Close();
    AetsOptions options;
    options.replay_threads = static_cast<int>(state.range(0));
    options.grouping = GroupingMode::kStatic;
    options.static_hot_groups = tpcc.DefaultHotGroups();
    AetsReplayer replayer(&tpcc.catalog(), &channel, options);
    AETS_CHECK(replayer.Start().ok());
    replayer.Stop();
    benchmark::DoNotOptimize(replayer.stats().records.load());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.num_txns));
}
BENCHMARK(BM_AetsSingleEpochReplay)->Arg(1)->Arg(2)->Arg(4);

// A recorded multi-epoch TPC-C stream, built once. Single-epoch replay can
// never overlap stages across epochs, so the cross-epoch pipeline
// (DESIGN.md §9) only shows up here.
struct MultiEpochFixture {
  static constexpr size_t kEpochTxns = 64;
  static constexpr int kNumEpochs = 32;

  MultiEpochFixture() : tpcc(EpochFixture::SmallConfig()) {
    LogicalClock clock;
    PrimaryDb db(&tpcc.catalog(), &clock);
    Rng rng(7);
    tpcc.Load(&db, &rng);
    std::vector<TxnLog> txns;
    db.SetCommitSink([&](TxnLog t) { txns.push_back(std::move(t)); });
    for (int e = 0; e < kNumEpochs; ++e) {
      txns.clear();
      for (size_t i = 0; i < kEpochTxns; ++i) {
        AETS_CHECK(tpcc.RunOltpTransaction(&db, &rng).ok());
      }
      Epoch epoch;
      epoch.epoch_id = static_cast<uint64_t>(e);
      epoch.txns = std::move(txns);
      txns = {};
      total_txns += epoch.txns.size();
      epochs.push_back(EncodeEpoch(epoch));
    }
  }

  TpccWorkload tpcc;
  std::vector<ShippedEpoch> epochs;
  uint64_t total_txns = 0;
};

MultiEpochFixture& MultiFixture() {
  static MultiEpochFixture* fixture = new MultiEpochFixture();
  return *fixture;
}

void BM_AetsMultiEpochReplay(benchmark::State& state) {
  // range(0) = replay threads, range(1) = pipeline depth. Depth 1 is the
  // unpipelined baseline; the CI bench job compares depth 1 vs 3.
  const MultiEpochFixture& fx = MultiFixture();
  for (auto _ : state) {
    EpochChannel channel(fx.epochs.size() + 1);
    for (const auto& shipped : fx.epochs) channel.Send(shipped);
    channel.Close();
    AetsOptions options;
    options.replay_threads = static_cast<int>(state.range(0));
    options.pipeline_depth = static_cast<int>(state.range(1));
    options.grouping = GroupingMode::kStatic;
    options.static_hot_groups = fx.tpcc.DefaultHotGroups();
    AetsReplayer replayer(&fx.tpcc.catalog(), &channel, options);
    AETS_CHECK(replayer.Start().ok());
    replayer.Stop();
    AETS_CHECK(replayer.error().ok());
    benchmark::DoNotOptimize(replayer.stats().records.load());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.total_txns));
}
BENCHMARK(BM_AetsMultiEpochReplay)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_AetsMultiEpochReplayCommitLatency(benchmark::State& state) {
  // Same stream, but the commit stage carries 200us of non-CPU latency per
  // epoch (modeling a durable-commit fsync or a remote acknowledgement).
  // At depth 1 that latency serializes with dispatch + translation; at
  // depth >= 2 the pipeline hides prepare work behind it, so the win shows
  // even on a single core. range(0) = threads, range(1) = pipeline depth.
  const MultiEpochFixture& fx = MultiFixture();
  for (auto _ : state) {
    EpochChannel channel(fx.epochs.size() + 1);
    for (const auto& shipped : fx.epochs) channel.Send(shipped);
    channel.Close();
    AetsOptions options;
    options.replay_threads = static_cast<int>(state.range(0));
    options.pipeline_depth = static_cast<int>(state.range(1));
    options.grouping = GroupingMode::kStatic;
    options.static_hot_groups = fx.tpcc.DefaultHotGroups();
    AetsReplayer replayer(&fx.tpcc.catalog(), &channel, options);
    replayer.SetCommitHookForTest([](const ShippedEpoch& epoch) {
      if (!epoch.is_heartbeat()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    AETS_CHECK(replayer.Start().ok());
    replayer.Stop();
    AETS_CHECK(replayer.error().ok());
    benchmark::DoNotOptimize(replayer.stats().records.load());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.total_txns));
}
BENCHMARK(BM_AetsMultiEpochReplayCommitLatency)
    ->Args({4, 1})
    ->Args({4, 3})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A recorded BusTracker stream split once into per-shard sub-epoch lanes for
// shard counts 1/2/4 (DESIGN.md §11). The split runs in the fixture so only
// replay is measured.
struct ShardedBusFixture {
  static constexpr uint64_t kMixTxns = 2048;
  static constexpr size_t kEpochSize = 64;

  ShardedBusFixture() : bus(SmallBusConfig()) {
    log = RecordWorkload(&bus, kMixTxns, kEpochSize, /*seed=*/7);
    for (int shards : {1, 2, 4}) {
      maps.emplace(shards, ShardMap::Hash(bus.catalog().num_tables(), shards));
      streams.emplace(shards, ShardRecordedLog(log, maps.at(shards)));
    }
  }

  static BusTrackerConfig SmallBusConfig() {
    BusTrackerConfig config;
    config.rows_per_table = 20;
    return config;
  }

  BusTrackerWorkload bus;
  RecordedLog log;
  std::map<int, ShardMap> maps;
  std::map<int, std::vector<std::vector<ShippedEpoch>>> streams;
};

ShardedBusFixture& ShardedFixture() {
  static ShardedBusFixture* fixture = new ShardedBusFixture();
  return *fixture;
}

void BM_ShardedMultiEpochReplay(benchmark::State& state) {
  // range(0) = shard count. Each backup shard drains its own sub-epoch lane
  // behind a ShardedBackup, with a fixed TOTAL thread budget (4 replay + 4
  // commit) divided across shards by SplitThreadBudget — the scale-out
  // question is what N lanes buy at constant resources per box.
  //
  // Each shard's commit carries a modeled non-CPU latency proportional to
  // the sub-epoch's payload size (a per-shard durable/ack link at ~25 MB/s),
  // the same technique as BM_AetsMultiEpochReplayCommitLatency: sharding
  // divides each lane's payload N ways, so the latency component — the
  // resource multi-backup replay actually multiplies — scales down with N
  // even on a single core, while the CPU component needs real cores.
  const ShardedBusFixture& fx = ShardedFixture();
  const int shards = static_cast<int>(state.range(0));
  const auto& lanes = fx.streams.at(shards);
  const ShardMap& map = fx.maps.at(shards);
  constexpr int64_t kLinkBytesPerUs = 25;  // ~25 MB/s per shard
  for (auto _ : state) {
    std::vector<std::unique_ptr<EpochChannel>> channels;
    std::vector<EpochChannel*> raw;
    for (const auto& lane : lanes) {
      channels.push_back(std::make_unique<EpochChannel>(lane.size() + 1));
      for (const auto& sub : lane) channels.back()->Send(sub);
      channels.back()->Close();
      raw.push_back(channels.back().get());
    }
    ReplayerSpec spec;
    spec.kind = ReplayerKind::kAets;
    spec.threads = 4;
    spec.commit_threads = 4;
    spec.shard_count = shards;
    auto backup = MakeShardedReplayer(spec, &fx.bus.catalog(), &map, raw);
    for (int s = 0; s < shards; ++s) {
      auto* shard = dynamic_cast<ReplayerBase*>(backup->shard(s));
      AETS_CHECK(shard != nullptr);
      shard->SetCommitHookForTest([](const ShippedEpoch& epoch) {
        if (epoch.is_heartbeat()) return;
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int64_t>(epoch.ByteSize()) / kLinkBytesPerUs));
      });
    }
    AETS_CHECK(backup->Start().ok());
    backup->Stop();
    for (int s = 0; s < shards; ++s) {
      AETS_CHECK(dynamic_cast<ReplayerBase*>(backup->shard(s))->error().ok());
    }
    AETS_CHECK(ReplicaDigestAt(backup.get(), &fx.bus.catalog(),
                               fx.log.final_ts) == fx.log.primary_digest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.log.mix_txns));
}
BENCHMARK(BM_ShardedMultiEpochReplay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Columnar OLAP scan vs the row-store version-chain walk (DESIGN.md §13):
// the same CH-benCHmark Q6 aggregate over order_line, once through
// Memtable::ScanVisible and once through the ColumnStore's typed vectors.
// The fixture replays a recorded CH stream into one backup with the column
// store enabled, so both paths read the identical MVCC state at final_ts.

struct ColumnScanFixture {
  ColumnScanFixture() : ch(ChConfig()) {
    log = RecordWorkload(&ch, /*num_txns=*/4000, /*epoch_size=*/256,
                         /*seed=*/19);
    EpochChannel channel(log.epochs.size() + 1);
    for (const auto& shipped : log.epochs) channel.Send(shipped);
    channel.Close();
    AetsOptions options;
    options.replay_threads = 2;
    options.grouping = GroupingMode::kPerTable;
    backup = std::make_unique<AetsReplayer>(&ch.catalog(), &channel, options);
    AETS_CHECK(backup->Start().ok());
    backup->Stop();
    AETS_CHECK(backup->error().ok());
    const Memtable* ol =
        backup->store()->GetTable(ch.tpcc().orderline());
    order_line_rows = ol->VisibleRowCount(log.final_ts);
    // Both paths must agree before either is worth timing.
    ChQueryExecutor rows(&ch, backup->store());
    ChQueryExecutor cols(&ch, backup->store(), backup->column_store());
    AETS_CHECK(rows.RunQ6(log.final_ts, 1, 10) ==
               cols.RunQ6(log.final_ts, 1, 10));
    AETS_CHECK(rows.error().ok() && cols.error().ok());
  }

  static TpccConfig ChConfig() {
    TpccConfig config;
    config.warehouses = 2;
    config.items = 200;
    config.customers_per_district = 20;
    config.init_orders_per_district = 20;
    return config;
  }

  ChBenchmarkWorkload ch;
  RecordedLog log;
  std::unique_ptr<AetsReplayer> backup;
  size_t order_line_rows = 0;
};

ColumnScanFixture& ColumnFixture() {
  static ColumnScanFixture* fixture = new ColumnScanFixture();
  return *fixture;
}

void BM_RowScan(benchmark::State& state) {
  const ColumnScanFixture& fx = ColumnFixture();
  ChQueryExecutor exec(&fx.ch, fx.backup->store());
  for (auto _ : state) {
    auto q6 = exec.RunQ6(fx.log.final_ts, 1, 10);
    benchmark::DoNotOptimize(q6.revenue);
  }
  AETS_CHECK(exec.error().ok());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.order_line_rows));
}
BENCHMARK(BM_RowScan)->Unit(benchmark::kMicrosecond);

void BM_ColumnScan(benchmark::State& state) {
  const ColumnScanFixture& fx = ColumnFixture();
  ChQueryExecutor exec(&fx.ch, fx.backup->store(), fx.backup->column_store());
  for (auto _ : state) {
    auto q6 = exec.RunQ6(fx.log.final_ts, 1, 10);
    benchmark::DoNotOptimize(q6.revenue);
  }
  AETS_CHECK(exec.error().ok());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.order_line_rows));
}
BENCHMARK(BM_ColumnScan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aets
