// Micro-benchmarks for the replay-side hot paths: metadata dispatch, the
// full-image dispatch C5 pays, epoch encode, the translate stage in both its
// owning-decode and zero-copy-view forms, and end-to-end single-epoch replay
// through AETS. Reports allocs/record via the global new counter.

#include "alloc_counter.h"  // must precede everything: replaces operator new

#include <benchmark/benchmark.h>

#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/log/shipped_epoch.h"
#include "aets/storage/version_chain.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/channel.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

// One recorded TPC-C epoch payload, built once.
struct EpochFixture {
  EpochFixture() : tpcc(SmallConfig()) {
    LogicalClock clock;
    PrimaryDb db(&tpcc.catalog(), &clock);
    Rng rng(1);
    tpcc.Load(&db, &rng);
    // Capture 256 mix transactions into one epoch via the commit sink.
    Epoch epoch;
    epoch.epoch_id = 0;
    std::vector<TxnLog> txns;
    db.SetCommitSink([&](TxnLog t) { txns.push_back(std::move(t)); });
    OltpLikeRun(&db, &rng, 256);
    epoch.txns = std::move(txns);
    shipped = EncodeEpoch(epoch);
  }

  static TpccConfig SmallConfig() {
    TpccConfig config;
    config.warehouses = 1;
    config.items = 100;
    config.customers_per_district = 10;
    config.init_orders_per_district = 2;
    return config;
  }

  void OltpLikeRun(PrimaryDb* db, Rng* rng, int n) {
    for (int i = 0; i < n; ++i) {
      AETS_CHECK(tpcc.RunOltpTransaction(db, rng).ok());
    }
  }

  TpccWorkload tpcc;
  ShippedEpoch shipped;
};

EpochFixture& Fixture() {
  static EpochFixture* fixture = new EpochFixture();
  return *fixture;
}

void BM_DispatchMetadataPass(benchmark::State& state) {
  const std::string& data = *Fixture().shipped.payload;
  for (auto _ : state) {
    size_t offset = 0;
    size_t records = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::DecodeMetadata(data, &offset);
      benchmark::DoNotOptimize(rec);
      ++records;
    }
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.num_records));
}
BENCHMARK(BM_DispatchMetadataPass);

void BM_DispatchFullImagePass(benchmark::State& state) {
  // What C5's dispatcher pays per epoch: full value + checksum decoding.
  const std::string& data = *Fixture().shipped.payload;
  for (auto _ : state) {
    size_t offset = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::Decode(data, &offset);
      benchmark::DoNotOptimize(rec);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.num_records));
}
BENCHMARK(BM_DispatchFullImagePass);

void BM_EncodeEpoch(benchmark::State& state) {
  auto epoch = DecodeEpoch(Fixture().shipped);
  AETS_CHECK(epoch.ok());
  for (auto _ : state) {
    ShippedEpoch shipped = EncodeEpoch(*epoch);
    benchmark::DoNotOptimize(shipped);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.ByteSize()));
}
BENCHMARK(BM_EncodeEpoch);

// The two translate-stage variants below decode every DML record of the
// epoch and produce install-ready VersionCells (what TranslateGroup hands to
// the committer). The owning variant is the pre-refactor shape: a full
// Decode that materializes a std::vector<ColumnValue> (string payloads and
// all) per record. The view variant is the current hot path: DecodeView plus
// a single-memcpy PackedDelta::FromWire.

void BM_TranslateEpochOwning(benchmark::State& state) {
  const std::string& data = *Fixture().shipped.payload;
  std::vector<VersionCell> cells;
  cells.reserve(Fixture().shipped.num_records);
  size_t allocs_before = aets_bench::AllocCount();
  for (auto _ : state) {
    cells.clear();
    size_t offset = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::Decode(data, &offset);
      AETS_CHECK(rec.ok());
      if (!rec->is_dml()) continue;
      VersionCell cell;
      cell.commit_ts = rec->timestamp;
      cell.txn_id = rec->txn_id;
      cell.is_delete = rec->type == LogRecordType::kDelete;
      cell.delta = PackedDelta::FromColumnValues(rec->values);
      cells.push_back(std::move(cell));
    }
    benchmark::DoNotOptimize(cells.data());
  }
  int64_t records = static_cast<int64_t>(Fixture().shipped.num_records);
  state.counters["allocs/record"] = benchmark::Counter(
      static_cast<double>(aets_bench::AllocCount() - allocs_before) /
          static_cast<double>(records),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_TranslateEpochOwning);

void BM_TranslateEpochView(benchmark::State& state) {
  const std::string& data = *Fixture().shipped.payload;
  std::vector<VersionCell> cells;
  cells.reserve(Fixture().shipped.num_records);
  size_t allocs_before = aets_bench::AllocCount();
  for (auto _ : state) {
    cells.clear();
    size_t offset = 0;
    while (offset < data.size()) {
      auto rec = LogCodec::DecodeView(data, &offset);
      AETS_CHECK(rec.ok());
      if (!rec->is_dml()) continue;
      VersionCell cell;
      cell.commit_ts = rec->timestamp;
      cell.txn_id = rec->txn_id;
      cell.is_delete = rec->type == LogRecordType::kDelete;
      cell.delta = PackedDelta::FromWire(rec->num_values, rec->value_bytes);
      cells.push_back(std::move(cell));
    }
    benchmark::DoNotOptimize(cells.data());
  }
  int64_t records = static_cast<int64_t>(Fixture().shipped.num_records);
  state.counters["allocs/record"] = benchmark::Counter(
      static_cast<double>(aets_bench::AllocCount() - allocs_before) /
          static_cast<double>(records),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_TranslateEpochView);

void BM_AetsSingleEpochReplay(benchmark::State& state) {
  const TpccWorkload& tpcc = Fixture().tpcc;
  for (auto _ : state) {
    EpochChannel channel(4);
    channel.Send(Fixture().shipped);
    channel.Close();
    AetsOptions options;
    options.replay_threads = static_cast<int>(state.range(0));
    options.grouping = GroupingMode::kStatic;
    options.static_hot_groups = tpcc.DefaultHotGroups();
    AetsReplayer replayer(&tpcc.catalog(), &channel, options);
    AETS_CHECK(replayer.Start().ok());
    replayer.Stop();
    benchmark::DoNotOptimize(replayer.stats().records.load());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Fixture().shipped.num_txns));
}
BENCHMARK(BM_AetsSingleEpochReplay)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace aets
