// Micro-benchmarks for the value-log codec: encode, full decode, the
// zero-copy view decode the replay hot path uses, and the metadata-only
// decode that the AETS/ATR dispatchers use. The full-vs-metadata decode gap
// is the root of C5's dispatcher penalty; the full-vs-view gap is what the
// zero-copy refactor buys. Reports allocs/op via the global new counter.

#include "alloc_counter.h"  // must precede everything: replaces operator new

#include <benchmark/benchmark.h>

#include "aets/common/rng.h"
#include "aets/log/codec.h"

namespace aets {
namespace {

LogRecord SampleRecord(int num_values) {
  Rng rng(7);
  std::vector<ColumnValue> values;
  for (int i = 0; i < num_values; ++i) {
    switch (i % 3) {
      case 0:
        values.push_back({static_cast<ColumnId>(i), Value(rng.UniformInt(0, 1 << 30))});
        break;
      case 1:
        values.push_back({static_cast<ColumnId>(i), Value(rng.UniformDouble())});
        break;
      default:
        values.push_back({static_cast<ColumnId>(i), Value(rng.AlphaString(16, 32))});
    }
  }
  return LogRecord::Dml(LogRecordType::kUpdate, 1, 2, 3, 4, 5,
                        std::move(values), 1, 0);
}

void BM_Encode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string buf;
    LogCodec::Encode(rec, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Encode)->Arg(2)->Arg(8)->Arg(32);

void BM_DecodeFull(benchmark::State& state) {
  std::string buf;
  LogCodec::Encode(SampleRecord(static_cast<int>(state.range(0))), &buf);
  size_t allocs_before = aets_bench::AllocCount();
  for (auto _ : state) {
    size_t offset = 0;
    auto rec = LogCodec::Decode(buf, &offset);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(aets_bench::AllocCount() - allocs_before),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeFull)->Arg(2)->Arg(8)->Arg(32);

void BM_DecodeView(benchmark::State& state) {
  // The replay hot path: one validation walk, string_view slices, no
  // per-value allocations.
  std::string buf;
  LogCodec::Encode(SampleRecord(static_cast<int>(state.range(0))), &buf);
  size_t allocs_before = aets_bench::AllocCount();
  for (auto _ : state) {
    size_t offset = 0;
    auto rec = LogCodec::DecodeView(buf, &offset);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(aets_bench::AllocCount() - allocs_before),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeView)->Arg(2)->Arg(8)->Arg(32);

void BM_DecodeMetadataOnly(benchmark::State& state) {
  std::string buf;
  LogCodec::Encode(SampleRecord(static_cast<int>(state.range(0))), &buf);
  for (auto _ : state) {
    size_t offset = 0;
    auto rec = LogCodec::DecodeMetadata(buf, &offset);
    benchmark::DoNotOptimize(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeMetadataOnly)->Arg(2)->Arg(8)->Arg(32);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace aets
