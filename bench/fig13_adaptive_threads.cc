// Reproduces paper Fig. 13: the effect of the thread-allocation policy on
// visibility delay over time (BusTracker). Three policies, all sharing the
// SAME table grouping and differing only in the access-rate estimate fed to
// the adaptive thread allocator:
//   AETS      — DTGM-predicted per-slot access rates;
//   AETS-HA   — the trailing 5-slot historical average (lags shifts);
//   AETS-NOAC — no access rates: allocation by pending log size only.
// Paper shape: AETS below AETS-NOAC throughout; AETS-HA close to NOAC on
// average ("forecasting based on historical data does not impact the
// average visibility delay significantly").
//
// Methodology: each slot is one catch-up drain of that slot's recorded
// backlog while queries arrive with the slot's query mix; the allocator
// sees each policy's rate estimate for the slot.

#include <algorithm>
#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/predictor/dtgm.h"
#include "aets/workload/bustracker.h"

namespace aets {
namespace {

enum class Policy { kDtgm, kHistAvg, kNoac };

void Run() {
  int threads = BenchThreads(8);
  BusTrackerConfig config;
  config.rows_per_table = 60;
  config.rate_period_slots = 48;  // fast shifts stress the allocator
  BusTrackerWorkload bus(config);

  const int first_slot = 100;
  const int num_slots = static_cast<int>(Scaled(8, 4));
  const uint64_t queries_per_slot = Scaled(150, 40);
  const uint64_t txns_per_slot = Scaled(8000, 800);

  // Realized access-rate history; DTGM trains on the prefix before the
  // evaluation window.
  RateMatrix realized = bus.GenerateRateSeries(first_slot + num_slots + 2,
                                               /*noise_frac=*/0.10, 4242);
  DtgmConfig dtgm_config;
  dtgm_config.input_window = 16;
  dtgm_config.hidden = 20;
  dtgm_config.layers = 2;
  dtgm_config.horizon = 4;
  dtgm_config.train_steps = static_cast<int>(Scaled(100, 30));
  dtgm_config.batch = 3;
  DtgmPredictor dtgm(dtgm_config);
  std::printf("Fig 13: adaptive thread allocation on BusTracker "
              "(%d slots x %llu queries, %d threads; training DTGM...)\n",
              num_slots, static_cast<unsigned long long>(queries_per_slot),
              threads);
  dtgm.Fit(RateMatrix(realized.begin(), realized.begin() + first_slot));

  // Per-policy per-slot allocator inputs. All policies keep the same
  // grouping (built from the realized rates at the window start).
  auto estimate_for = [&](Policy policy, int slot) -> std::vector<double> {
    switch (policy) {
      case Policy::kDtgm: {
        RateMatrix recent(realized.begin() + slot - 16,
                          realized.begin() + slot);
        return dtgm.Predict(recent, 1)[0];
      }
      case Policy::kHistAvg: {
        std::vector<double> mean(realized.front().size(), 0.0);
        for (int k = slot - 5; k < slot; ++k) {
          for (size_t t = 0; t < mean.size(); ++t) {
            mean[t] += realized[static_cast<size_t>(k)][t] / 5;
          }
        }
        return mean;
      }
      case Policy::kNoac:
      default:
        return realized[static_cast<size_t>(slot)];  // unused by allocator
    }
  };

  // One recorded backlog per slot, shared by the three policies. The first
  // drain of the process is a discarded warm-up (allocator/page-cache).
  std::vector<RecordedLog> slot_logs;
  for (int s = 0; s < num_slots; ++s) {
    slot_logs.push_back(RecordWorkload(&bus, txns_per_slot, /*epoch_size=*/256,
                                       1000 + static_cast<uint64_t>(s)));
  }

  {
    ReplayerSpec warm;
    warm.threads = threads;
    warm.grouping = GroupingMode::kPerTable;
    warm.rates = realized[static_cast<size_t>(first_slot)];
    CatchUpOptions warm_options;
    warm_options.queries = 10;
    (void)RunCatchUp(slot_logs[0], &bus, warm, warm_options);
  }

  std::vector<std::vector<double>> slot_means;  // [policy][slot]
  std::vector<double> overall;
  for (Policy policy : {Policy::kDtgm, Policy::kHistAvg, Policy::kNoac}) {
    std::vector<double> means;
    double sum = 0;
    for (int s = 0; s < num_slots; ++s) {
      int slot = first_slot + s;
      ReplayerSpec spec;
      spec.kind = policy == Policy::kNoac ? ReplayerKind::kAetsNoac
                                          : ReplayerKind::kAets;
      spec.threads = threads;
      // DBSCAN grouping at eps 0.2 yields a handful of hot groups with
      // contrasting rates, where allocation differences act.
      spec.grouping = GroupingMode::kByAccessRate;
      spec.dbscan_eps = 0.2;
      spec.rates = realized[static_cast<size_t>(first_slot)];  // grouping base
      spec.regroup_on_rate_change = false;  // same groups for all policies
      std::vector<double> estimate = estimate_for(policy, slot);
      spec.rate_provider = [estimate] { return estimate; };

      CatchUpOptions options;
      options.pace_on_global = true;  // measure within-epoch publication order
      options.lead_txns = 128;        // half an epoch of freshness demand
      options.queries = queries_per_slot;
      double phase = static_cast<double>(slot % config.rate_period_slots) /
                     config.rate_period_slots;
      options.phase_fn = [phase] { return phase; };
      // Median of three repeats with distinct query seeds.
      std::vector<double> reps;
      for (int rep = 0; rep < 3; ++rep) {
        options.seed = 700 + static_cast<uint64_t>(slot) * 10 +
                       static_cast<uint64_t>(rep);
        CatchUpResult r =
            RunCatchUp(slot_logs[static_cast<size_t>(s)], &bus, spec, options);
        AETS_CHECK(r.state_matches_primary);
        reps.push_back(r.mean_delay_us);
      }
      std::sort(reps.begin(), reps.end());
      means.push_back(reps[1]);
      sum += reps[1];
    }
    slot_means.push_back(std::move(means));
    overall.push_back(sum / num_slots);
  }

  TablePrinter table({"slot", "AETS us", "AETS-HA us", "AETS-NOAC us"});
  for (int s = 0; s < num_slots; ++s) {
    table.AddRow({std::to_string(first_slot + s),
                  TablePrinter::Fmt(slot_means[0][static_cast<size_t>(s)], 1),
                  TablePrinter::Fmt(slot_means[1][static_cast<size_t>(s)], 1),
                  TablePrinter::Fmt(slot_means[2][static_cast<size_t>(s)], 1)});
  }
  table.Print();
  std::printf("overall mean: AETS=%.1fus AETS-HA=%.1fus AETS-NOAC=%.1fus\n",
              overall[0], overall[1], overall[2]);
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
