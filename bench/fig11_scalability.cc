// Reproduces paper Fig. 11: multi-core scalability of replay throughput on
// TPC-C, normalized to single-thread ATR.
//
// Hardware substitution note: the paper measures a 64-core server; this
// harness may run on a machine with very few cores (even one), where adding
// worker threads cannot increase wall-clock throughput. The bench therefore
// reports two tables:
//   (1) measured throughput at each thread count on THIS machine — flat when
//       the machine has fewer cores than threads, by construction;
//   (2) a work-span (Amdahl) projection built from the MEASURED phase
//       breakdown of each algorithm: serial share = dispatch + ordered
//       commit busy time, parallel share = phase-1/worker replay busy time.
// The projection reproduces the paper's low-thread shapes (AETS/TPLR near
// linear; C5 penalized by its serial full-image dispatch). ATR's flattening
// beyond 16 threads comes from operation-sequence-check synchronization that
// only manifests under true hardware parallelism, so it is NOT captured
// here; the paper's C5-overtakes-ATR crossover at 32+ threads is likewise
// out of reach on a small host.

#include <algorithm>
#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

void Run() {
  TpccConfig config;
  config.warehouses = 2;
  config.items = 400;
  config.customers_per_district = 40;
  config.init_orders_per_district = 10;

  TpccWorkload shape(config);
  std::vector<double> rates(shape.catalog().num_tables(), 0.0);
  rates[shape.district()] = 100;
  rates[shape.stock()] = 100;
  rates[shape.customer()] = 100;
  rates[shape.orders()] = 100;
  rates[shape.orderline()] = 200;

  TpccWorkload workload(config);
  RecordedLog log =
      RecordWorkload(&workload, Scaled(6000, 300), /*epoch_size=*/256, 55);
  std::printf("Fig 11: TPC-C replay-throughput scalability "
              "(normalized to 1-thread ATR; %llu txns, %zu epochs)\n",
              static_cast<unsigned long long>(log.mix_txns), log.epochs.size());

  auto spec_for = [&](ReplayerKind kind, int threads) {
    ReplayerSpec spec;
    spec.kind = kind;
    spec.threads = threads;
    spec.grouping = GroupingMode::kStatic;
    spec.hot_groups = shape.DefaultHotGroups();
    spec.rates = rates;
    return spec;
  };
  auto median_run = [&](ReplayerKind kind, int threads) {
    std::vector<BatchReplayResult> reps;
    for (int rep = 0; rep < 3; ++rep) {
      reps.push_back(
          ReplayRecorded(log, &workload.catalog(), spec_for(kind, threads)));
      AETS_CHECK(reps.back().state_matches_primary);
    }
    std::sort(reps.begin(), reps.end(),
              [](const BatchReplayResult& a, const BatchReplayResult& b) {
                return a.wall_us < b.wall_us;
              });
    return reps[1];
  };

  const ReplayerKind kinds[] = {ReplayerKind::kAets, ReplayerKind::kTplr,
                                ReplayerKind::kAtr, ReplayerKind::kC5};

  // Single-thread runs give the per-algorithm cost structure.
  BatchReplayResult base[4];
  for (int k = 0; k < 4; ++k) base[k] = median_run(kinds[k], 1);
  double atr1 = base[2].txns_per_sec;
  std::printf("1-thread ATR: %.0f txn/s\n", atr1);

  std::printf("\n(1) measured on this machine (flat when cores < threads)\n");
  const int thread_counts[] = {1, 2, 4, 8, 16};
  TablePrinter measured({"threads", "AETS", "TPLR", "ATR", "C5"});
  for (int threads : thread_counts) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (ReplayerKind kind : kinds) {
      BatchReplayResult r = median_run(kind, threads);
      row.push_back(TablePrinter::Fmt(r.txns_per_sec / std::max(1.0, atr1)) +
                    "x");
    }
    measured.AddRow(std::move(row));
  }
  measured.Print();

  // Work-span projection. Structure per algorithm:
  //  - AETS: serial dispatch; phase-1 replay parallel over W; ordered commit
  //    parallel over the table groups (bounded by the committer pool of 4).
  //  - TPLR: same but commit is a single ordered thread (serial).
  //  - ATR: workers install directly (its commit thread only bumps the
  //    watermark); the measured operation-sequence wait is serialization —
  //    it is re-measured at each W, so its growth with workers drives the
  //    flattening the paper reports.
  //  - C5: the full-image dispatch is serial; apply is parallel.
  std::printf("\n(2) work-span projection from measured phase breakdowns\n");
  TablePrinter projected({"threads", "AETS", "TPLR", "ATR", "C5", "ATR sync%"});
  for (int threads : thread_counts) {
    std::vector<std::string> row = {std::to_string(threads)};
    double atr_sync = 0;
    for (int k = 0; k < 4; ++k) {
      BatchReplayResult r = median_run(kinds[k], threads);
      double d = r.dispatch_frac;
      double c = r.commit_frac;
      double par = r.replay_frac;
      double span = 0;
      switch (kinds[k]) {
        case ReplayerKind::kAets:
          span = d + par / threads + c / std::min(threads, 4);
          break;
        case ReplayerKind::kAtr: {
          double sync = std::min(r.sync_frac, par);
          atr_sync = sync;
          span = d + c + sync + (par - sync) / threads;
          break;
        }
        default:  // TPLR, C5: single ordered committer
          span = d + par / threads + c;
          break;
      }
      // Fractions sum to 1, so 1/span is the projected speedup over this
      // algorithm's own single-thread run.
      double projected_tps = base[k].txns_per_sec / std::max(span, 1e-6);
      row.push_back(TablePrinter::Fmt(projected_tps / std::max(1.0, atr1)) +
                    "x");
    }
    row.push_back(TablePrinter::Fmt(atr_sync * 100, 1) + "%");
    projected.AddRow(std::move(row));
  }
  projected.Print();
  std::printf("(AETS commit parallelizes across groups; ATR's measured "
              "op-seq wait serializes; C5's full-image dispatch serializes)\n");
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
