// Micro-benchmarks for the storage substrate: B+Tree point ops and scans,
// MVCC version-chain appends and snapshot reads, and the durable segment
// tier's sequential append / reopen-scan paths.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "aets/common/rng.h"
#include "aets/log/epoch.h"
#include "aets/log/record.h"
#include "aets/log/shipped_epoch.h"
#include "aets/storage/btree.h"
#include "aets/storage/memtable.h"
#include "aets/storage/segment_store.h"

namespace aets {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<int> tree;
    Rng rng(1);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      bool created;
      tree.GetOrCreate(rng.UniformInt(0, 1 << 20), &created, i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1024)->Arg(16384);

void BM_BTreeFind(benchmark::State& state) {
  BPlusTree<int> tree;
  for (int i = 0; i < state.range(0); ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(rng.UniformInt(0, state.range(0) - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeFind)->Arg(16384)->Arg(262144);

void BM_BTreeScan(benchmark::State& state) {
  BPlusTree<int> tree;
  for (int i = 0; i < 65536; ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  for (auto _ : state) {
    int64_t sum = 0;
    tree.Scan(0, state.range(0), [&](int64_t k, int*) {
      sum += k;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeScan)->Arg(1024)->Arg(16384);

void BM_VersionAppend(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MemNode node(1);
    state.ResumeTiming();
    for (int i = 1; i <= state.range(0); ++i) {
      VersionCell cell;
      cell.commit_ts = static_cast<Timestamp>(i);
      cell.txn_id = static_cast<TxnId>(i);
      cell.delta =
          PackedDelta::FromColumnValues({{0, Value(static_cast<int64_t>(i))}});
      node.AppendVersion(std::move(cell));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VersionAppend)->Arg(64)->Arg(1024);

void BM_SnapshotRead(benchmark::State& state) {
  MemNode node(1);
  for (int i = 1; i <= state.range(0); ++i) {
    VersionCell cell;
    cell.commit_ts = static_cast<Timestamp>(i);
    cell.txn_id = static_cast<TxnId>(i);
    cell.delta = PackedDelta::FromColumnValues(
        {{static_cast<ColumnId>(i % 8), Value(static_cast<int64_t>(i))}});
    node.AppendVersion(std::move(cell));
  }
  Rng rng(3);
  for (auto _ : state) {
    Timestamp ts = static_cast<Timestamp>(rng.UniformInt(1, state.range(0)));
    benchmark::DoNotOptimize(node.ReadVisible(ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRead)->Arg(16)->Arg(256);

ShippedEpoch MakeBenchEpoch(EpochId id, int txns) {
  Epoch epoch;
  epoch.epoch_id = id;
  for (int t = 0; t < txns; ++t) {
    TxnLog txn;
    txn.txn_id = static_cast<TxnId>(id * 1000 + t + 1);
    txn.commit_ts = static_cast<Timestamp>(id * 1000 + t + 1);
    txn.records = {
        LogRecord::Begin(1, txn.txn_id, txn.commit_ts),
        LogRecord::Dml(LogRecordType::kInsert, 2, txn.txn_id, txn.commit_ts, 0,
                       static_cast<int64_t>(t),
                       {{0, Value(std::string(64, 'x'))}}),
        LogRecord::Commit(3, txn.txn_id, txn.commit_ts)};
    epoch.txns.push_back(std::move(txn));
  }
  return EncodeEpoch(epoch);
}

void BM_SegmentStoreAppend(benchmark::State& state) {
  // Sequential append throughput of the durable tier, fsync off so the
  // benchmark measures framing + write, not the device's flush latency.
  std::string dir =
      std::filesystem::temp_directory_path() / "aets_bench_seg_append";
  ShippedEpoch epoch = MakeBenchEpoch(0, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    SegmentStoreOptions options;
    options.dir = dir;
    options.fsync_policy = FsyncPolicy::kNone;
    auto store = SegmentStore::Open(options);
    AETS_CHECK(store.ok());
    state.ResumeTiming();
    for (EpochId id = 0; id < 64; ++id) {
      epoch.epoch_id = id;
      AETS_CHECK((*store)->Append(epoch).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreAppend)->Arg(1)->Arg(16);

void BM_SegmentStoreReopen(benchmark::State& state) {
  // Restart-recovery scan cost: Open() re-validates every frame CRC, so
  // this bounds how fast a backup can come back per durable epoch.
  std::string dir =
      std::filesystem::temp_directory_path() / "aets_bench_seg_reopen";
  std::filesystem::remove_all(dir);
  {
    SegmentStoreOptions options;
    options.dir = dir;
    options.fsync_policy = FsyncPolicy::kNone;
    auto store = SegmentStore::Open(options);
    AETS_CHECK(store.ok());
    for (EpochId id = 0; id < static_cast<EpochId>(state.range(0)); ++id) {
      AETS_CHECK((*store)->Append(MakeBenchEpoch(id, 8)).ok());
    }
  }
  for (auto _ : state) {
    SegmentStoreOptions options;
    options.dir = dir;
    options.fsync_policy = FsyncPolicy::kNone;
    auto store = SegmentStore::Open(options);
    AETS_CHECK(store.ok());
    benchmark::DoNotOptimize((*store)->next_epoch());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreReopen)->Arg(64)->Arg(512);

void BM_SegmentStoreTruncate(benchmark::State& state) {
  // Checkpoint-coordinated truncation cost: manifest rewrite (tmp + rename)
  // plus unlinking the dropped segments. range(0) is the number of sealed
  // segments below the floor, i.e. the unlink fan-out of one truncation.
  std::string dir =
      std::filesystem::temp_directory_path() / "aets_bench_seg_truncate";
  ShippedEpoch epoch = MakeBenchEpoch(0, 16);
  const EpochId per_segment = 4;
  const EpochId total =
      per_segment * (static_cast<EpochId>(state.range(0)) + 1);
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    SegmentStoreOptions options;
    options.dir = dir;
    options.segment_max_bytes = per_segment * epoch.payload->size();
    options.fsync_policy = FsyncPolicy::kNone;
    auto store = SegmentStore::Open(options);
    AETS_CHECK(store.ok());
    for (EpochId id = 0; id < total; ++id) {
      epoch.epoch_id = id;
      AETS_CHECK((*store)->Append(epoch).ok());
    }
    EpochId floor = total - per_segment;
    state.ResumeTiming();
    AETS_CHECK((*store)->TruncateBelow(floor).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreTruncate)->Arg(4)->Arg(32);

}  // namespace
}  // namespace aets
