// Micro-benchmarks for the storage substrate: B+Tree point ops and scans,
// MVCC version-chain appends and snapshot reads.

#include <benchmark/benchmark.h>

#include "aets/common/rng.h"
#include "aets/storage/btree.h"
#include "aets/storage/memtable.h"

namespace aets {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<int> tree;
    Rng rng(1);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      bool created;
      tree.GetOrCreate(rng.UniformInt(0, 1 << 20), &created, i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1024)->Arg(16384);

void BM_BTreeFind(benchmark::State& state) {
  BPlusTree<int> tree;
  for (int i = 0; i < state.range(0); ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(rng.UniformInt(0, state.range(0) - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeFind)->Arg(16384)->Arg(262144);

void BM_BTreeScan(benchmark::State& state) {
  BPlusTree<int> tree;
  for (int i = 0; i < 65536; ++i) {
    bool created;
    tree.GetOrCreate(i, &created, i);
  }
  for (auto _ : state) {
    int64_t sum = 0;
    tree.Scan(0, state.range(0), [&](int64_t k, int*) {
      sum += k;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeScan)->Arg(1024)->Arg(16384);

void BM_VersionAppend(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MemNode node(1);
    state.ResumeTiming();
    for (int i = 1; i <= state.range(0); ++i) {
      VersionCell cell;
      cell.commit_ts = static_cast<Timestamp>(i);
      cell.txn_id = static_cast<TxnId>(i);
      cell.delta =
          PackedDelta::FromColumnValues({{0, Value(static_cast<int64_t>(i))}});
      node.AppendVersion(std::move(cell));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VersionAppend)->Arg(64)->Arg(1024);

void BM_SnapshotRead(benchmark::State& state) {
  MemNode node(1);
  for (int i = 1; i <= state.range(0); ++i) {
    VersionCell cell;
    cell.commit_ts = static_cast<Timestamp>(i);
    cell.txn_id = static_cast<TxnId>(i);
    cell.delta = PackedDelta::FromColumnValues(
        {{static_cast<ColumnId>(i % 8), Value(static_cast<int64_t>(i))}});
    node.AppendVersion(std::move(cell));
  }
  Rng rng(3);
  for (auto _ : state) {
    Timestamp ts = static_cast<Timestamp>(rng.UniformInt(1, state.range(0)));
    benchmark::DoNotOptimize(node.ReadVisible(ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRead)->Arg(16)->Arg(256);

}  // namespace
}  // namespace aets
