// Design ablation (beyond the paper's figures, motivated by its Section VI-B
// analysis): how much of AETS's win comes from each mechanism. Compares full
// AETS against AETS without two-stage priority, without table-group parallel
// commit (single commit thread), and without access-rate-aware allocation
// (AETS-NOAC), on TPC-C — both batch replay throughput and live visibility
// delay.

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

void Run() {
  int threads = BenchThreads(4);
  TpccConfig config;
  config.warehouses = 2;
  config.items = 400;
  config.customers_per_district = 40;
  config.init_orders_per_district = 10;

  TpccWorkload shape(config);
  std::vector<double> rates(shape.catalog().num_tables(), 0.0);
  rates[shape.district()] = rates[shape.stock()] = rates[shape.customer()] =
      rates[shape.orders()] = 100;
  rates[shape.orderline()] = 200;

  std::printf("Design ablation on TPC-C (%d threads): what each AETS "
              "mechanism contributes\n",
              threads);

  TpccWorkload workload(config);
  RecordedLog log =
      RecordWorkload(&workload, Scaled(4000, 300), /*epoch_size=*/256, 88);

  auto make_workload = [config]() -> std::unique_ptr<Workload> {
    return std::make_unique<TpccWorkload>(config);
  };
  LiveRunOptions live_options;
  live_options.oltp_txns = Scaled(2500, 200);
  live_options.olap_queries = Scaled(400, 60);
  live_options.epoch_size = 256;
  live_options.seed = 99;

  TablePrinter table({"variant", "replay txn/s", "mean delay us", "p95 us"});
  for (ReplayerKind kind :
       {ReplayerKind::kAets, ReplayerKind::kAetsNoTwoStage,
        ReplayerKind::kAetsSingleCommit, ReplayerKind::kAetsNoac,
        ReplayerKind::kTplr}) {
    ReplayerSpec spec;
    spec.kind = kind;
    spec.threads = threads;
    spec.grouping = GroupingMode::kStatic;
    spec.hot_groups = shape.DefaultHotGroups();
    spec.rates = rates;

    BatchReplayResult batch = ReplayRecorded(log, &workload.catalog(), spec);
    AETS_CHECK(batch.state_matches_primary);
    LiveRunResult live = RunLive(make_workload, spec, live_options);
    AETS_CHECK(live.state_matches_primary);
    table.AddRow({batch.name, TablePrinter::Fmt(batch.txns_per_sec, 0),
                  TablePrinter::Fmt(live.mean_delay_us, 1),
                  TablePrinter::Fmt(live.p95_delay_us, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
