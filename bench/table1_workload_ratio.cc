// Reproduces paper Table I: HTAP workload characterization — tables written
// by OLTP (num(T)), tables accessed by OLAP (num(A)), their intersection,
// and the fraction of log entries landing on the intersection ("ratio").
// Paper reference values: TPC-C 90.98%, SEATS 38.08%, CH Q1..Q6 blocks,
// BusTracker 37.12%.

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/workload/bustracker.h"
#include "aets/workload/chbenchmark.h"
#include "aets/workload/seats.h"
#include "aets/workload/tpcc.h"
#include "aets/workload/workload_stats.h"

namespace aets {
namespace {

TpccConfig BenchTpcc() {
  TpccConfig config;
  config.warehouses = 2;
  config.items = 400;
  config.customers_per_district = 40;
  config.init_orders_per_district = 10;
  return config;
}

void Run() {
  uint64_t txns = Scaled(2000, 200);
  std::printf("Table I: characterization of HTAP benchmarks (%llu mix txns)\n",
              static_cast<unsigned long long>(txns));

  TablePrinter table({"Benchmark", "num(T)", "num(A)", "num(A \xE2\x88\xA9 T)",
                      "ratio", "paper"});

  {
    TpccWorkload tpcc(BenchTpcc());
    WorkloadStats s = MeasureWorkloadStats(&tpcc, txns);
    table.AddRow({"TPC-C", std::to_string(s.num_written_tables),
                  std::to_string(s.num_accessed_tables),
                  std::to_string(s.num_hot_tables),
                  TablePrinter::Fmt(s.hot_log_ratio * 100) + "%", "90.98%"});
  }
  {
    SeatsWorkload seats;
    WorkloadStats s = MeasureWorkloadStats(&seats, txns * 2);
    table.AddRow({"SEATS", std::to_string(s.num_written_tables),
                  std::to_string(s.num_accessed_tables),
                  std::to_string(s.num_hot_tables),
                  TablePrinter::Fmt(s.hot_log_ratio * 100) + "%", "38.08%"});
  }
  {
    ChBenchmarkWorkload ch(BenchTpcc());
    const char* paper[] = {"60.83%", "18.79%", "74.93%",
                           "66.91%", "90.79%", "60.83%"};
    for (int q = 0; q < 6; ++q) {
      const AnalyticQuery& query = ch.analytic_queries()[static_cast<size_t>(q)];
      double ratio = HotRatioForTables(&ch, txns, query.tables);
      std::vector<TableId> written = ch.WrittenTables();
      std::sort(written.begin(), written.end());
      size_t hot = 0;
      for (TableId t : query.tables) {
        hot += std::binary_search(written.begin(), written.end(), t) ? 1 : 0;
      }
      table.AddRow({"CH-benCHmark " + query.name, "8",
                    std::to_string(query.tables.size()), std::to_string(hot),
                    TablePrinter::Fmt(ratio * 100) + "%",
                    paper[q]});
    }
  }
  {
    BusTrackerConfig config;
    config.rows_per_table = 50;
    BusTrackerWorkload bus(config);
    WorkloadStats s = MeasureWorkloadStats(&bus, txns * 3);
    table.AddRow({"BusTracker", std::to_string(s.num_written_tables),
                  std::to_string(s.num_accessed_tables),
                  std::to_string(s.num_hot_tables),
                  TablePrinter::Fmt(s.hot_log_ratio * 100) + "%", "37.12%"});
  }
  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
