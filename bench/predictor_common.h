#ifndef AETS_BENCH_PREDICTOR_COMMON_H_
#define AETS_BENCH_PREDICTOR_COMMON_H_

// Shared evaluation for the predictor benches (Tables III/IV, Fig. 14):
// fit once, walk the test region, score MAPE at several horizons.

#include <vector>

#include "aets/common/macros.h"
#include "aets/predictor/predictor.h"

namespace aets {

/// MAPE of `predictor` at each of `horizons` steps ahead, fitting once on
/// the first `train_slots` and walking forward with `stride`.
inline std::vector<double> HorizonMapes(RatePredictor* predictor,
                                        const RateMatrix& series,
                                        int train_slots, int window,
                                        const std::vector<int>& horizons,
                                        int stride) {
  int max_horizon = 0;
  for (int h : horizons) max_horizon = std::max(max_horizon, h);
  AETS_CHECK(train_slots + max_horizon <= static_cast<int>(series.size()));
  predictor->Fit(RateMatrix(series.begin(), series.begin() + train_slots));

  std::vector<std::vector<double>> actual(horizons.size());
  std::vector<std::vector<double>> pred(horizons.size());
  for (int t = train_slots; t + max_horizon <= static_cast<int>(series.size());
       t += stride) {
    RateMatrix recent(series.begin() + (t - window), series.begin() + t);
    RateMatrix forecast = predictor->Predict(recent, max_horizon);
    for (size_t i = 0; i < horizons.size(); ++i) {
      int h = horizons[i];
      const auto& a = series[static_cast<size_t>(t + h - 1)];
      const auto& p = forecast[static_cast<size_t>(h - 1)];
      actual[i].insert(actual[i].end(), a.begin(), a.end());
      pred[i].insert(pred[i].end(), p.begin(), p.end());
    }
  }
  std::vector<double> out;
  for (size_t i = 0; i < horizons.size(); ++i) {
    out.push_back(Mape(actual[i], pred[i]));
  }
  return out;
}

}  // namespace aets

#endif  // AETS_BENCH_PREDICTOR_COMMON_H_
