// Reproduces paper Fig. 8: TPC-C performance comparison — (a) normalized
// replay throughput, (b) normalized replay time (with AETS's hot/cold stage
// split), (c) visibility delay — for AETS vs TPLR vs ATR vs C5.
//
// Paper shapes to reproduce: AETS replay throughput ~1.2x ATR/C5 and above
// TPLR; ATR ≈ C5; ATR mean visibility delay ~1.3x AETS. Grouping follows the
// paper's Section VI-A TPC-C configuration: hot group {district, stock,
// customer, orders} plus hot group {order_line} at twice the access rate;
// remaining tables are singleton cold groups.

#include "comparison_common.h"

#include "aets/workload/tpcc.h"

namespace aets {
namespace {

void Run() {
  TpccConfig config;
  config.warehouses = 2;
  config.items = 400;
  config.customers_per_district = 40;
  config.init_orders_per_district = 10;

  TpccWorkload shape(config);  // only for ids/groups
  ComparisonSetup setup;
  setup.title = "Fig 8: TPC-C comparison (AETS / TPLR / ATR / C5)";
  setup.make_workload = [config] {
    return std::make_unique<TpccWorkload>(config);
  };
  setup.grouping = GroupingMode::kStatic;
  setup.hot_groups = shape.DefaultHotGroups();
  setup.rates = std::vector<double>(shape.catalog().num_tables(), 0.0);
  // order_line's access rate is twice the other four hot tables'.
  setup.rates[shape.district()] = 100;
  setup.rates[shape.stock()] = 100;
  setup.rates[shape.customer()] = 100;
  setup.rates[shape.orders()] = 100;
  setup.rates[shape.orderline()] = 200;
  setup.batch_txns = 10000;
  setup.live_txns = 8000;
  setup.live_queries = 800;
  setup.epoch_size = 256;
  RunComparison(setup);
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
