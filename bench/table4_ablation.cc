// Reproduces paper Table IV: DTGM ablation — the full model vs the variant
// without the GCN component. Paper: w/o gcn 16.96% vs DTGM 16.80% MAPE
// (graph mixing over correlated tables helps, modestly).

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/predictor/dtgm.h"
#include "aets/workload/bustracker.h"
#include "predictor_common.h"

namespace aets {
namespace {

void Run() {
  BusTrackerWorkload bus;
  RateMatrix series = bus.GenerateRateSeries(600, /*noise_frac=*/0.15,
                                             /*seed=*/20240601);
  std::printf("Table IV: DTGM ablation (MAPE @ 15-minute horizon)\n");

  TablePrinter table({"model", "MAPE", "paper"});
  for (bool use_gcn : {false, true}) {
    DtgmConfig config;
    config.input_window = 24;
    config.horizon = 15;
    config.hidden = 24;
    config.layers = 2;
    config.use_gcn = use_gcn;
    config.train_steps = static_cast<int>(Scaled(140, 30));
    config.batch = 3;
    DtgmPredictor dtgm(config);
    std::vector<double> mapes =
        HorizonMapes(&dtgm, series, /*train_slots=*/420, /*window=*/24, {15},
                     /*stride=*/4);
    table.AddRow({dtgm.name(), TablePrinter::Fmt(mapes[0] * 100) + "%",
                  use_gcn ? "16.80%" : "16.96%"});
  }
  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
