// Reproduces paper Table III: table-access-rate prediction MAPE on the
// BusTracker series at 15/30/60-minute horizons, for HA, ARIMA, QB5000, and
// DTGM. Paper values: HA 30.30% at every horizon (structural — its forecast
// is horizon-independent), ARIMA 18.66/21.50/27.90, QB5000 18.12/19.70/20.50,
// DTGM best at 16.80/18.18/19.76.

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/predictor/classical.h"
#include "aets/predictor/dtgm.h"
#include "aets/predictor/qb5000.h"
#include "aets/workload/bustracker.h"
#include "predictor_common.h"

namespace aets {
namespace {

void Run() {
  BusTrackerWorkload bus;
  const int total_slots = 600;
  const int train_slots = 420;
  const int window = 24;
  RateMatrix series = bus.GenerateRateSeries(total_slots, /*noise_frac=*/0.15,
                                             /*seed=*/20240601);
  std::vector<int> horizons = {15, 30, 60};
  const int stride = 3;

  std::printf("Table III: access-rate prediction MAPE on BusTracker "
              "(%d slots, train %d, horizons 15/30/60 min)\n",
              total_slots, train_slots);

  TablePrinter table({"model", "15 mins", "30 mins", "60 mins", "paper"});
  auto add = [&](RatePredictor* p, const char* paper) {
    std::vector<double> mapes =
        HorizonMapes(p, series, train_slots, window, horizons, stride);
    table.AddRow({p->name(), TablePrinter::Fmt(mapes[0] * 100) + "%",
                  TablePrinter::Fmt(mapes[1] * 100) + "%",
                  TablePrinter::Fmt(mapes[2] * 100) + "%", paper});
  };

  HaPredictor ha(60);
  add(&ha, "30.30 / 30.30 / 30.30");

  ArimaPredictor arima(4, 1, 2);
  add(&arima, "18.66 / 21.50 / 27.90");

  Qb5000Config qb_config;
  qb_config.lag_window = window;
  qb_config.horizon = 60;
  qb_config.lstm.hidden = 24;
  qb_config.lstm.train_steps = static_cast<int>(Scaled(80, 20));
  Qb5000Predictor qb(qb_config);
  add(&qb, "18.12 / 19.70 / 20.50");

  DtgmConfig dtgm_config;
  dtgm_config.input_window = window;
  dtgm_config.horizon = 60;
  dtgm_config.hidden = 24;
  dtgm_config.layers = 2;
  dtgm_config.train_steps = static_cast<int>(Scaled(140, 30));
  dtgm_config.batch = 3;
  DtgmPredictor dtgm(dtgm_config);
  add(&dtgm, "16.80 / 18.18 / 19.76");

  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
