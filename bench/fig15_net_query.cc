// Network-tier serving benchmark (DESIGN.md §12): a closed-loop multi-client
// driver measuring snapshot-query latency against a live backup while epoch
// replay runs at FULL rate underneath — the HTAP claim of the paper carried
// across a real TCP hop.
//
// One process, two real localhost TCP paths:
//   primary thread -> LogShipper -> EpochStreamServer ==tcp==> client ->
//   SerialReplayer (with a TCP NACK source), and N QueryClient threads
//   ==tcp==> QueryServer on the backup, each issuing back-to-back snapshot
//   scans until the writer finishes. Reports per-client-count rows:
//
//   clients  queries     qps   p50_us   p95_us   p99_us  busy  replay_ktps
//
// The check the CI sweep cares about: at >= 64 concurrent connections the
// query path still answers (p99 finite, zero errors) and replay throughput
// is not starved by the serving tier.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aets/baselines/serial_replayer.h"
#include "aets/bench/harness.h"
#include "aets/common/histogram.h"
#include "aets/net/epoch_stream.h"
#include "aets/net/query_server.h"
#include "aets/net/tcp_source.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/snapshot_coordinator.h"
#include "aets/replication/log_shipper.h"

namespace aets {
namespace {

constexpr int kNumTables = 8;

void FillCatalog(Catalog* catalog) {
  for (int t = 0; t < kNumTables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"count", ColumnType::kInt64},
                                               {"payload", ColumnType::kString}}))
                   .ok());
  }
}

struct RunResult {
  uint64_t queries = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  double qps = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double replay_ktps = 0;
};

RunResult RunOnce(int clients, uint64_t txns, uint64_t seed) {
  Catalog catalog;
  FillCatalog(&catalog);
  LogicalClock clock;
  PrimaryDb primary(&catalog, &clock);
  LogShipper shipper(/*epoch_size=*/64, /*retention_capacity=*/1u << 16);
  primary.SetCommitSink(
      [&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  net::EpochStreamServer stream_server(&shipper);
  AETS_CHECK(stream_server.Start(0).ok());
  EpochChannel sink(8192);
  net::EpochStreamClient stream_client("127.0.0.1", stream_server.port(), 0,
                                       &sink);
  net::TcpEpochSource source("127.0.0.1", stream_server.port(), 0);
  AETS_CHECK(stream_client.Start().ok());
  AETS_CHECK(source.Connect().ok());

  SerialReplayer replayer(&catalog, &sink);
  replayer.SetEpochSource(&source);
  ReplayRecoveryOptions recovery;
  recovery.reorder_window_pauses = 256;
  recovery.max_retries = 64;
  recovery.max_pending = 65536;
  replayer.SetRecoveryOptions(recovery);
  AETS_CHECK(replayer.Start().ok());

  GlobalSnapshotCoordinator coordinator;
  coordinator.AttachShard([&] { return replayer.GlobalVisibleTs(); });
  net::QueryServerOptions qopts;
  qopts.max_sessions = clients;
  qopts.admission_queue = static_cast<size_t>(clients);
  net::QueryServer query_server(&replayer, &coordinator, qopts);
  AETS_CHECK(query_server.Start(0).ok());

  // Closed loop: each client thread holds one connection and issues
  // back-to-back scans until the writer is done.
  std::atomic<bool> done{false};
  std::vector<std::unique_ptr<Histogram>> lat;
  std::vector<uint64_t> busy(static_cast<size_t>(clients), 0);
  std::vector<uint64_t> errors(static_cast<size_t>(clients), 0);
  for (int c = 0; c < clients; ++c) lat.push_back(std::make_unique<Histogram>());
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + static_cast<uint64_t>(c));
      auto client = net::QueryClient::Connect("127.0.0.1", query_server.port());
      if (!client.ok()) {
        errors[static_cast<size_t>(c)] += 1;
        return;
      }
      while (!done.load(std::memory_order_acquire)) {
        TableId table =
            static_cast<TableId>(rng.UniformInt(0, kNumTables - 1));
        int64_t start = MonotonicMicros();
        auto scan = client->Scan(table);
        if (!scan.ok()) {
          // Counted, then the loop retries on a fresh connection — in the
          // closed loop the only expected failure is teardown racing Stop.
          errors[static_cast<size_t>(c)] += 1;
          client = net::QueryClient::Connect("127.0.0.1", query_server.port());
          if (!client.ok()) return;
          continue;
        }
        if (scan->busy) {
          busy[static_cast<size_t>(c)] += 1;
          client = net::QueryClient::Connect("127.0.0.1", query_server.port());
          if (!client.ok()) return;
          continue;
        }
        lat[static_cast<size_t>(c)]->Record(MonotonicMicros() - start);
      }
    });
  }

  // The writer: full rate, no pacing. Heartbeats keep the queryable
  // frontier moving between epoch seals.
  Rng rng(seed);
  int64_t write_start = MonotonicMicros();
  for (uint64_t i = 1; i <= txns; ++i) {
    PrimaryTxn txn = primary.Begin();
    TableId t = static_cast<TableId>(rng.UniformInt(0, kNumTables - 1));
    int64_t key = rng.UniformInt(0, 499);
    txn.Insert(t, key,
               {{0, Value(static_cast<int64_t>(i))},
                {1, Value(rng.AlphaString(8, 24))}});
    AETS_CHECK(primary.Commit(std::move(txn)).ok());
    if (i % 512 == 0) shipper.ShipHeartbeat(primary.AcquireHeartbeatTs());
  }
  shipper.ShipHeartbeat(primary.AcquireHeartbeatTs());
  shipper.Finish();
  double write_secs =
      static_cast<double>(MonotonicMicros() - write_start) / 1e6;

  done.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  replayer.Stop();
  AETS_CHECK(replayer.error().ok());
  Timestamp final_ts = primary.last_commit_ts();
  AETS_CHECK(replayer.store()->DigestAt(final_ts) ==
             primary.store().DigestAt(final_ts));
  query_server.Stop();
  stream_client.Stop();
  stream_server.Stop();

  Histogram merged;
  RunResult result;
  for (int c = 0; c < clients; ++c) {
    merged.Merge(*lat[static_cast<size_t>(c)]);
    result.busy += busy[static_cast<size_t>(c)];
    result.errors += errors[static_cast<size_t>(c)];
  }
  Histogram::Stats stats = merged.SnapshotStats();
  result.queries = static_cast<uint64_t>(stats.count);
  result.qps = write_secs > 0 ? static_cast<double>(stats.count) / write_secs
                              : 0;
  result.p50 = stats.p50;
  result.p95 = stats.p95;
  result.p99 = stats.p99;
  result.replay_ktps =
      write_secs > 0 ? static_cast<double>(txns) / write_secs / 1e3 : 0;
  return result;
}

void Run() {
  const uint64_t txns = Scaled(60000, 4000);
  std::printf("Fig 15: snapshot-query latency over TCP vs client count "
              "(%" PRIu64 " txns replayed at full rate per row)\n",
              txns);
  std::printf("%8s %9s %9s %9s %9s %9s %6s %6s %12s\n", "clients", "queries",
              "qps", "p50_us", "p95_us", "p99_us", "busy", "errs",
              "replay_ktps");
  for (int clients : {1, 8, 32, 64, 96}) {
    RunResult r = RunOnce(clients, txns, /*seed=*/29 + clients);
    std::printf("%8d %9" PRIu64 " %9.0f %9.0f %9.0f %9.0f %6" PRIu64
                " %6" PRIu64 " %12.1f\n",
                clients, r.queries, r.qps, r.p50, r.p95, r.p99, r.busy,
                r.errors, r.replay_ktps);
    std::fflush(stdout);
    AETS_CHECK(r.queries > 0);
  }
}

}  // namespace
}  // namespace aets

int main() {
  aets::Run();
  return 0;
}
