// Reproduces paper Fig. 9: BusTracker performance comparison — same three
// panels as Fig. 8, on the workload where hot tables carry only ~37% of the
// log. The paper's headline here: the hot tables' replay (stage 1) takes a
// small fraction of the total because the cold log volume dominates, so
// prioritized replay answers analytics much earlier.

#include "comparison_common.h"

#include "aets/workload/bustracker.h"

namespace aets {
namespace {

void Run() {
  BusTrackerConfig config;
  config.rows_per_table = 100;

  BusTrackerWorkload shape(config);
  ComparisonSetup setup;
  setup.title = "Fig 9: BusTracker comparison (AETS / TPLR / ATR / C5)";
  setup.make_workload = [config] {
    return std::make_unique<BusTrackerWorkload>(config);
  };
  // Dynamic DBSCAN grouping on access rates (paper: "the grouping is
  // determined dynamically").
  setup.grouping = GroupingMode::kByAccessRate;
  setup.rates = shape.TrueRates(0);
  setup.batch_txns = 14000;
  setup.live_txns = 12000;
  setup.live_queries = 800;
  setup.epoch_size = 256;
  RunComparison(setup);
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
