// Reproduces paper Fig. 10: per-query visibility delay on CH-benCHmark
// (Q1..Q22) for AETS vs ATR vs C5, under the catch-up methodology: the
// replayer drains a recorded backlog while the 22 analytic queries arrive
// with snapshots spread over the commit range. Paper shapes: AETS below
// ATR/C5 for every query; per-query AETS delays close to one another because
// multi-group queries wait on the slowest group they touch (Algorithm 3).

#include <algorithm>
#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/common/clock.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/channel.h"
#include "aets/workload/chbenchmark.h"
#include "aets/workload/query_exec.h"

namespace aets {
namespace {

void Run() {
  int threads = BenchThreads(4);
  TpccConfig config;
  config.warehouses = 2;
  config.items = 300;
  config.customers_per_district = 30;
  config.init_orders_per_district = 5;

  ChBenchmarkWorkload workload(config);
  std::printf("Fig 10: CH-benCHmark per-query visibility delay "
              "(22 queries, %d threads, per-table groups)\n",
              threads);

  // Per-table access rates derived from how many queries touch each table.
  std::vector<double> rates(workload.catalog().num_tables(), 0.0);
  for (const auto& q : workload.analytic_queries()) {
    for (TableId t : q.tables) rates[t] += 50.0;
  }

  RecordedLog log = RecordWorkload(&workload, Scaled(10000, 500),
                                   /*epoch_size=*/256, /*seed=*/77);
  CatchUpOptions options;
  options.queries = Scaled(2200, 220);  // ~100 arrivals per query template
  options.seed = 77;

  const ReplayerKind kinds[] = {ReplayerKind::kAets, ReplayerKind::kAtr,
                                ReplayerKind::kC5};
  std::vector<CatchUpResult> results;
  for (ReplayerKind kind : kinds) {
    ReplayerSpec spec;
    spec.kind = kind;
    spec.threads = threads;
    spec.grouping = GroupingMode::kPerTable;  // paper: each table own group
    spec.rates = rates;
    // Median of three repeats.
    std::vector<CatchUpResult> reps;
    for (int rep = 0; rep < 3; ++rep) {
      options.seed = 77 + static_cast<uint64_t>(rep);
      reps.push_back(RunCatchUp(log, &workload, spec, options));
      AETS_CHECK(reps.back().state_matches_primary);
    }
    std::sort(reps.begin(), reps.end(),
              [](const CatchUpResult& a, const CatchUpResult& b) {
                return a.mean_delay_us < b.mean_delay_us;
              });
    results.push_back(reps[1]);
  }

  TablePrinter table({"query", "AETS mean us", "ATR mean us", "C5 mean us"});
  for (size_t q = 0; q < workload.analytic_queries().size(); ++q) {
    std::vector<std::string> row = {workload.analytic_queries()[q].name};
    for (const auto& r : results) {
      row.push_back(q < r.per_query_mean_us.size()
                        ? TablePrinter::Fmt(r.per_query_mean_us[q], 1)
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("overall mean visibility delay: ");
  for (const auto& r : results) {
    std::printf("%s=%.1fus ", r.name.c_str(), r.mean_delay_us);
  }
  std::printf("\n");

  // Variant (DESIGN.md §13): once the stream is visible, how fast is the
  // analytic side? Q1/Q6 over the replayed order_line at the final
  // snapshot, row-store version-chain walk vs the columnar projection.
  std::printf("\nFig 10 variant: OLAP scan path at the final snapshot "
              "(order_line)\n");
  EpochChannel channel(log.epochs.size() + 1);
  for (const auto& shipped : log.epochs) channel.Send(shipped);
  channel.Close();
  AetsOptions aets;
  aets.replay_threads = threads;
  aets.grouping = GroupingMode::kPerTable;
  AetsReplayer backup(&workload.catalog(), &channel, aets);
  AETS_CHECK(backup.Start().ok());
  backup.Stop();
  AETS_CHECK(backup.error().ok());

  ChQueryExecutor row_exec(&workload, backup.store());
  ChQueryExecutor col_exec(&workload, backup.store(), backup.column_store());
  AETS_CHECK(row_exec.RunQ1(log.final_ts, INT64_MAX) ==
             col_exec.RunQ1(log.final_ts, INT64_MAX));
  AETS_CHECK(row_exec.RunQ6(log.final_ts, 1, 10) ==
             col_exec.RunQ6(log.final_ts, 1, 10));
  auto time_us = [&](auto&& fn) {
    constexpr int kReps = 20;
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < kReps; ++rep) {
      int64_t start = MonotonicMicros();
      fn();
      best = std::min(best, MonotonicMicros() - start);
    }
    return static_cast<double>(best);
  };
  double q1_row = time_us([&] { row_exec.RunQ1(log.final_ts, INT64_MAX); });
  double q1_col = time_us([&] { col_exec.RunQ1(log.final_ts, INT64_MAX); });
  double q6_row = time_us([&] { row_exec.RunQ6(log.final_ts, 1, 10); });
  double q6_col = time_us([&] { col_exec.RunQ6(log.final_ts, 1, 10); });
  TablePrinter scan({"query", "row-path us", "column us", "speedup"});
  scan.AddRow({"Q1", TablePrinter::Fmt(q1_row, 1), TablePrinter::Fmt(q1_col, 1),
               TablePrinter::Fmt(q1_row / q1_col, 1)});
  scan.AddRow({"Q6", TablePrinter::Fmt(q6_row, 1), TablePrinter::Fmt(q6_col, 1),
               TablePrinter::Fmt(q6_row / q6_col, 1)});
  scan.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
