// Reproduces paper Fig. 14: DTGM hidden-layer dimension hyper-parameter
// sweep (MAPE vs hidden size). Paper: optimum at 48 — too small underfits,
// too large overfits/trains slowly at fixed budget.

#include <cstdio>

#include "aets/bench/harness.h"
#include "aets/predictor/dtgm.h"
#include "aets/workload/bustracker.h"
#include "predictor_common.h"

namespace aets {
namespace {

void Run() {
  BusTrackerWorkload bus;
  RateMatrix series = bus.GenerateRateSeries(600, /*noise_frac=*/0.15,
                                             /*seed=*/20240601);
  std::printf("Fig 14: DTGM hidden-dimension sweep (MAPE @ 15-minute "
              "horizon; paper optimum: 48)\n");

  TablePrinter table({"hidden dim", "MAPE"});
  for (int hidden : {8, 16, 32, 48, 64}) {
    DtgmConfig config;
    config.input_window = 24;
    config.horizon = 15;
    config.hidden = hidden;
    config.layers = 2;
    config.train_steps = static_cast<int>(Scaled(100, 25));
    config.batch = 3;
    DtgmPredictor dtgm(config);
    std::vector<double> mapes =
        HorizonMapes(&dtgm, series, /*train_slots=*/420, /*window=*/24, {15},
                     /*stride=*/6);
    table.AddRow({std::to_string(hidden),
                  TablePrinter::Fmt(mapes[0] * 100) + "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  aets::BenchInit(argc, argv);
  aets::Run();
  return 0;
}
