#ifndef AETS_BENCH_COMPARISON_COMMON_H_
#define AETS_BENCH_COMPARISON_COMMON_H_

// Shared driver for the Fig. 8 / Fig. 9 comparison benches: for one workload
// it reports (a) normalized replay throughput, (b) normalized replay time,
// and (c) visibility delay, for AETS vs TPLR vs ATR vs C5.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>

#include "aets/bench/harness.h"

namespace aets {

struct ComparisonSetup {
  std::string title;
  std::function<std::unique_ptr<Workload>()> make_workload;
  GroupingMode grouping = GroupingMode::kPerTable;
  std::vector<std::vector<TableId>> hot_groups;
  std::vector<double> rates;
  uint64_t batch_txns = 4000;
  uint64_t live_txns = 2000;
  uint64_t live_queries = 400;
  size_t epoch_size = 256;
};

inline ReplayerSpec SpecFor(const ComparisonSetup& setup, ReplayerKind kind,
                            int threads) {
  ReplayerSpec spec;
  spec.kind = kind;
  spec.threads = threads;
  spec.grouping = setup.grouping;
  spec.hot_groups = setup.hot_groups;
  spec.rates = setup.rates;
  return spec;
}

inline void RunComparison(const ComparisonSetup& setup) {
  int threads = BenchThreads(4);
  uint64_t batch_txns = Scaled(setup.batch_txns, 300);
  uint64_t live_txns = Scaled(setup.live_txns, 200);
  uint64_t queries = Scaled(setup.live_queries, 50);

  std::printf("%s — %d replay threads, epoch size %zu\n", setup.title.c_str(),
              threads, setup.epoch_size);

  // ---- (a)+(b): batch replay of a recorded log (paper RQ2 methodology).
  std::unique_ptr<Workload> workload = setup.make_workload();
  RecordedLog log = RecordWorkload(workload.get(), batch_txns,
                                   setup.epoch_size, /*seed=*/21);
  std::printf("\nrecorded: %llu mix txns, %zu epochs, primary %.0f txn/s\n",
              static_cast<unsigned long long>(log.mix_txns), log.epochs.size(),
              log.primary_txns_per_sec);

  const ReplayerKind kinds[] = {ReplayerKind::kAets, ReplayerKind::kTplr,
                                ReplayerKind::kAtr, ReplayerKind::kC5};
  // Median of five repeats: the suite often runs on small shared machines.
  std::vector<BatchReplayResult> batch;
  for (ReplayerKind kind : kinds) {
    std::vector<BatchReplayResult> reps;
    for (int rep = 0; rep < 5; ++rep) {
      reps.push_back(ReplayRecorded(log, &workload->catalog(),
                                    SpecFor(setup, kind, threads)));
    }
    std::sort(reps.begin(), reps.end(),
              [](const BatchReplayResult& a, const BatchReplayResult& b) {
                return a.wall_us < b.wall_us;
              });
    batch.push_back(reps[reps.size() / 2]);
  }

  double aets_total_us = static_cast<double>(batch[0].wall_us);
  std::printf("\n(a) normalized replay throughput (/primary), (b) normalized "
              "replay time (/AETS total)\n");
  TablePrinter ab({"replayer", "replay txn/s", "throughput/primary",
                   "wall ms", "time/AETS", "state==primary"});
  for (const auto& r : batch) {
    ab.AddRow({r.name, TablePrinter::Fmt(r.txns_per_sec, 0),
               TablePrinter::Fmt(r.txns_per_sec /
                                     std::max(1.0, log.primary_txns_per_sec)),
               TablePrinter::Fmt(static_cast<double>(r.wall_us) / 1000.0, 1),
               TablePrinter::Fmt(static_cast<double>(r.wall_us) /
                                 std::max(1.0, aets_total_us)),
               r.state_matches_primary ? "yes" : "NO"});
  }
  ab.Print();

  // AETS per-stage split: the hot stage finishing early is what hides the
  // cold tables' replay time (Fig. 8(b)/9(b) "Hot" vs "Cold" bars).
  const auto& aets = batch[0];
  double s1 = static_cast<double>(aets.stage1_wall_us);
  double s2 = static_cast<double>(aets.stage2_wall_us);
  std::printf("AETS stage split: hot(stage1) %.1f ms (%.0f%%), cold(stage2) "
              "%.1f ms (%.0f%%) of staged time\n",
              s1 / 1000, 100 * s1 / std::max(1.0, s1 + s2), s2 / 1000,
              100 * s2 / std::max(1.0, s1 + s2));

  // ---- (c): visibility delay while catching up on a backlog — queries
  // arrive with snapshots spread over the recorded commit range (Fig. 1's
  // scenario: how quickly does the data a query needs become visible?).
  std::printf("\n(c) visibility delay of real-time analytic queries "
              "(catch-up, %llu queries)\n",
              static_cast<unsigned long long>(queries));
  std::unique_ptr<Workload> live_workload = setup.make_workload();
  RecordedLog live_log = RecordWorkload(live_workload.get(), live_txns,
                                        setup.epoch_size, /*seed=*/33);
  TablePrinter vis({"replayer", "mean us", "p50 us", "p95 us", "p99 us",
                    "vs AETS", "state==primary"});
  std::vector<CatchUpResult> live;
  CatchUpOptions options;
  options.queries = queries;
  options.seed = 33;
  for (ReplayerKind kind : kinds) {
    std::vector<CatchUpResult> reps;
    for (int rep = 0; rep < 5; ++rep) {
      options.seed = 33 + static_cast<uint64_t>(rep);
      reps.push_back(RunCatchUp(live_log, live_workload.get(),
                                SpecFor(setup, kind, threads), options));
    }
    std::sort(reps.begin(), reps.end(),
              [](const CatchUpResult& a, const CatchUpResult& b) {
                return a.mean_delay_us < b.mean_delay_us;
              });
    live.push_back(reps[reps.size() / 2]);
  }
  double aets_mean = std::max(1e-9, live[0].mean_delay_us);
  for (const auto& r : live) {
    vis.AddRow({r.name, TablePrinter::Fmt(r.mean_delay_us, 1),
                TablePrinter::Fmt(r.p50_delay_us, 1),
                TablePrinter::Fmt(r.p95_delay_us, 1),
                TablePrinter::Fmt(r.p99_delay_us, 1),
                TablePrinter::Fmt(r.mean_delay_us / aets_mean) + "x",
                r.state_matches_primary ? "yes" : "NO"});
  }
  vis.Print();
}

}  // namespace aets

#endif  // AETS_BENCH_COMPARISON_COMMON_H_
